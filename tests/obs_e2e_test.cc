/**
 * @file
 * End-to-end observability tests: attaching the trace/metrics/audit
 * sink must never change simulation results, the exported trace must
 * be byte-identical across runs (and across --jobs values), the
 * registry must agree with the legacy counter structs, and the audit
 * log must attribute injected HL events to the right proximate cause
 * against the device's ground-truth IoDetail annotations.
 */
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "obs/audit_log.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/trace_recorder.h"
#include "perf/grid.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "workload/snia_synth.h"
#include "workload/synthetic.h"

namespace ssdcheck::core {
namespace {

using ssd::makePreset;
using ssd::SsdDevice;
using ssd::SsdModel;

constexpr uint64_t kRequests = 30000;
constexpr uint64_t kSeed = 77;
// Homes is 90% writes; on a preconditioned device that reliably
// drives write-buffer flushes *and* GC, so traces cover every span
// family and the audit log sees a meaningful HL-miss population.
constexpr double kSniaScale = 0.05;

struct RunOutcome
{
    AccuracyResult acc;
    sim::SimTime end;
    ssd::VolumeCounters counters;
    std::string trace;
};

/** One full diagnose + replay, optionally with the sink attached. */
RunOutcome
runOnce(bool attach)
{
    SsdDevice dev(makePreset(SsdModel::A));
    // Diagnose on a clean twin so precondition() below starts from a
    // fresh mapper (same pattern as the `ssdcheck trace` command).
    SsdDevice cleanDev(makePreset(SsdModel::A));
    DiagnosisRunner runner(cleanDev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    EXPECT_TRUE(fs.bufferModelUsable());
    SsdCheck check(fs);

    obs::TraceRecorder recorder;
    obs::Registry registry;
    obs::AuditLog audit;
    const obs::Sink sink{&recorder, &registry, &audit};
    if (attach) {
        dev.attachObservability(sink);
        check.attachObservability(sink);
    }

    dev.precondition();
    const auto trace = workload::buildSniaTrace(
        workload::SniaWorkload::Homes, dev.capacityPages(), kSniaScale,
        kSeed);
    RunOutcome out;
    out.acc = evaluatePredictionAccuracy(dev, check, trace, runner.now(),
                                         &out.end, nullptr,
                                         attach ? &sink : nullptr);
    out.counters = dev.totalCounters();
    out.trace = recorder.toChromeJson();
    return out;
}

void
expectSameCounters(const ssd::VolumeCounters &a, const ssd::VolumeCounters &b)
{
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.backpressureStalls, b.backpressureStalls);
    EXPECT_EQ(a.gcInvocations, b.gcInvocations);
    EXPECT_EQ(a.gcPagesMoved, b.gcPagesMoved);
    EXPECT_EQ(a.slcMigrations, b.slcMigrations);
    EXPECT_EQ(a.bufferHits, b.bufferHits);
}

TEST(ObsE2e, TracingOnOffIsBitIdentical)
{
    const RunOutcome off = runOnce(false);
    const RunOutcome on = runOnce(true);
    // The whole observability stack is passive: same confusion
    // counts, same virtual finish time, same device-side work.
    EXPECT_EQ(off.acc.nlTotal, on.acc.nlTotal);
    EXPECT_EQ(off.acc.nlCorrect, on.acc.nlCorrect);
    EXPECT_EQ(off.acc.hlTotal, on.acc.hlTotal);
    EXPECT_EQ(off.acc.hlCorrect, on.acc.hlCorrect);
    EXPECT_EQ(off.acc.faulted, on.acc.faulted);
    EXPECT_EQ(off.end, on.end);
    expectSameCounters(off.counters, on.counters);
    // Off means off: no events were captured without the attach.
    EXPECT_EQ(off.trace, "{\"traceEvents\":[\n],"
                         "\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ObsE2e, TraceIsByteIdenticalAcrossRuns)
{
    const RunOutcome a = runOnce(true);
    const RunOutcome b = runOnce(true);
    ASSERT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace);
    // The trace covers the full request path: host submit, device
    // dispatch, write buffer, GC, NAND, prediction.
    for (const char *name :
         {"host.request", "dev.request", "wb.enqueue", "wb.flush",
          "gc.trigger", "gc.run", "gc.migrate", "nand.read",
          "model.predict"})
        EXPECT_NE(a.trace.find(name), std::string::npos) << name;
}

TEST(ObsE2e, TraceIndependentOfJobs)
{
    // Four identical shards, each with its own recorder, run on 1
    // then 4 threads: per-shard traces must not depend on scheduling.
    const auto runBatch = [](unsigned jobs) {
        std::vector<std::string> traces(4);
        std::vector<std::pair<std::string, std::function<uint64_t()>>>
            tasks;
        for (size_t i = 0; i < traces.size(); ++i) {
            tasks.emplace_back("shard" + std::to_string(i),
                               [&traces, i]() -> uint64_t {
                                   traces[i] = runOnce(true).trace;
                                   return kRequests;
                               });
        }
        perf::runTimedBatch(tasks, jobs);
        return traces;
    };
    const std::vector<std::string> serial = runBatch(1);
    const std::vector<std::string> parallel = runBatch(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "shard " << i;
        EXPECT_EQ(serial[i], serial[0]); // same config+seed everywhere
    }
}

TEST(ObsE2e, RegistryMatchesLegacyCounters)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    SsdCheck check(fs);
    obs::Registry registry;
    obs::Sink sink;
    sink.metrics = &registry;
    dev.attachObservability(sink);
    check.attachObservability(sink);

    const auto trace =
        workload::buildRwMixedTrace(kRequests, dev.capacityPages(), kSeed);
    evaluatePredictionAccuracy(dev, check, trace, runner.now());

    const obs::Labels devLabels = {{"device", dev.name()}};
    EXPECT_EQ(registry.value("dev_requests_served", devLabels),
              static_cast<int64_t>(dev.requestsServed()));
    const obs::Labels vol0 = {{"device", dev.name()}, {"volume", "0"}};
    const ssd::VolumeCounters &c = dev.volumeCounters(0);
    EXPECT_EQ(registry.value("vol_writes", vol0),
              static_cast<int64_t>(c.writes));
    EXPECT_EQ(registry.value("vol_reads", vol0),
              static_cast<int64_t>(c.reads));
    EXPECT_EQ(registry.value("vol_flushes", vol0),
              static_cast<int64_t>(c.flushes));
    EXPECT_EQ(registry.value("vol_gc_invocations", vol0),
              static_cast<int64_t>(c.gcInvocations));
    EXPECT_EQ(registry.value("fault_stalls", devLabels), 0);
    // Calibrator gauges surfaced (exact values are model-internal;
    // a calibrated run must at least have observed requests).
    ASSERT_TRUE(registry.value("cal_observations").has_value());
    EXPECT_GT(*registry.value("cal_observations"), 0);
}

TEST(ObsE2e, AuditAttributionMatchesDeviceGroundTruth)
{
    // No injected noise: every HL event is a flush or a GC, and the
    // device's IoDetail annotations say which. The audit log, which
    // only sees black-box observables, must agree on >= 90% of the
    // HL misses (the acceptance bar for the forensics pillar).
    ssd::SsdConfig cfg = makePreset(SsdModel::A);
    cfg.hiccupProbability = 0.0;
    SsdDevice dev(cfg);
    SsdDevice cleanDev(cfg);
    DiagnosisRunner runner(cleanDev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    ASSERT_TRUE(fs.bufferModelUsable());
    SsdCheck check(fs);

    obs::AuditLog audit;
    obs::Sink sink;
    sink.audit = &audit;
    check.attachObservability(sink);

    dev.precondition();
    const auto trace = workload::buildSniaTrace(
        workload::SniaWorkload::Homes, dev.capacityPages(), kSniaScale,
        kSeed);
    // Model-blind background writer: a second tenant the predictor
    // never sees. Its writes desynchronize the device's buffer fill
    // and GC progress from the model's counters, injecting flushes
    // and GC bursts at times the model does not expect — the forced
    // HL events the audit log must attribute. IoDetail is the
    // white-box ground truth for each audited request.
    std::vector<ssd::IoDetail::Cause> truth;
    truth.reserve(trace.size());
    sim::SimTime t = runner.now();
    uint64_t hiddenLpn = 1;
    size_t issued = 0;
    for (const auto &rec : trace.records()) {
        if (++issued % 24 == 0) {
            for (int k = 0; k < 2; ++k) {
                blockdev::IoRequest hidden;
                hidden.type = blockdev::IoType::Write;
                hidden.lba = (hiddenLpn % dev.capacityPages()) *
                             blockdev::kSectorsPerPage;
                hiddenLpn += 7919;
                t = dev.submit(hidden, t).completeTime;
            }
        }
        const Prediction pred = check.predict(rec.req, t);
        check.onSubmit(rec.req, t);
        ssd::IoDetail detail;
        const auto res = dev.submitDetailed(rec.req, t, &detail);
        check.onComplete(rec.req, pred, t, res.completeTime, res.status,
                         res.attempts);
        truth.push_back(detail.cause());
        t = res.completeTime;
    }
    ASSERT_EQ(audit.size(), truth.size());

    uint64_t misses = 0;
    uint64_t correct = 0;
    for (size_t i = 0; i < audit.size(); ++i) {
        if (!audit.records()[i].isHlMiss())
            continue;
        ++misses;
        const obs::AuditCause cause = audit.causeOf(i);
        switch (truth[i]) {
          case ssd::IoDetail::Cause::GarbageCollection:
            correct += cause == obs::AuditCause::GcDrift ? 1 : 0;
            break;
          case ssd::IoDetail::Cause::WriteBuffer:
            correct += cause == obs::AuditCause::UnmodeledFlush ? 1 : 0;
            break;
          case ssd::IoDetail::Cause::Others:
            // Nothing recognizable happened device-side; any verdict
            // but a confident wrong one is acceptable. Count the
            // honest answer.
            correct += cause == obs::AuditCause::Unknown ? 1 : 0;
            break;
        }
    }
    ASSERT_GT(misses, 20u) << "workload must produce HL misses to audit";
    EXPECT_GE(static_cast<double>(correct),
              0.9 * static_cast<double>(misses))
        << correct << "/" << misses << " attributed correctly";
    const obs::AuditReport rep = audit.analyze();
    EXPECT_EQ(rep.total, truth.size());
    EXPECT_EQ(rep.hlMisses, misses);
}

} // namespace
} // namespace ssdcheck::core
