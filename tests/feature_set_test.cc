/** @file Unit tests for core/feature_set.h. */
#include <gtest/gtest.h>

#include "core/feature_set.h"

namespace ssdcheck::core {
namespace {

TEST(FeatureSetTest, DefaultIsUnusable)
{
    FeatureSet fs;
    EXPECT_FALSE(fs.bufferModelUsable());
    EXPECT_EQ(fs.numVolumes(), 1u);
    EXPECT_EQ(fs.bufferPages(), 0u);
}

TEST(FeatureSetTest, DerivedCounts)
{
    FeatureSet fs;
    fs.allocationVolumeBits = {17, 18};
    fs.bufferBytes = 128 * 1024;
    EXPECT_EQ(fs.numVolumes(), 4u);
    EXPECT_EQ(fs.bufferPages(), 32u);
    EXPECT_TRUE(fs.bufferModelUsable());
}

TEST(FeatureSetTest, SummaryContainsTableIFields)
{
    FeatureSet fs;
    fs.allocationVolumeBits = {17};
    fs.bufferBytes = 128 * 1024;
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    const std::string s = fs.summary();
    EXPECT_NE(s.find("2 volume(s)"), std::string::npos);
    EXPECT_NE(s.find("17"), std::string::npos);
    EXPECT_NE(s.find("128KB"), std::string::npos);
    EXPECT_NE(s.find("back"), std::string::npos);
    EXPECT_NE(s.find("full"), std::string::npos);
}

TEST(FeatureSetTest, SummaryReadTrigger)
{
    FeatureSet fs;
    fs.bufferBytes = 4096;
    fs.bufferType = BufferTypeFeature::Fore;
    fs.flushAlgorithms.fullTrigger = true;
    fs.flushAlgorithms.readTrigger = true;
    EXPECT_NE(fs.summary().find("full+read"), std::string::npos);
    EXPECT_NE(fs.summary().find("fore"), std::string::npos);
}

TEST(FeatureSetTest, BufferTypeNames)
{
    EXPECT_EQ(toString(BufferTypeFeature::Unknown), "unknown");
    EXPECT_EQ(toString(BufferTypeFeature::Back), "back");
    EXPECT_EQ(toString(BufferTypeFeature::Fore), "fore");
}

TEST(VolumeIndexOfTest, MatchesBitExtraction)
{
    const std::vector<uint32_t> bits = {4, 7};
    EXPECT_EQ(volumeIndexOf(bits, 0), 0u);
    EXPECT_EQ(volumeIndexOf(bits, 1u << 4), 1u);
    EXPECT_EQ(volumeIndexOf(bits, 1u << 7), 2u);
    EXPECT_EQ(volumeIndexOf(bits, (1u << 4) | (1u << 7)), 3u);
    EXPECT_EQ(volumeIndexOf(bits, (1u << 5)), 0u);
}

TEST(VolumeIndexOfTest, EmptyBitsAlwaysZero)
{
    EXPECT_EQ(volumeIndexOf({}, 0xfffffffULL), 0u);
}

} // namespace
} // namespace ssdcheck::core
