/**
 * @file End-to-end health-supervisor recovery (the PR's acceptance
 * criterion):
 *
 * Under the `drift` fault profile a mid-run firmware update shrinks
 * the write buffer 4x, collapsing HL prediction accuracy. With the
 * supervisor attached, the drift is detected, the model quarantined
 * (conservative NL), the buffer feature re-diagnosed online — probe
 * I/O interleaved with the live workload, never pausing it — and the
 * rebuilt model hot-swapped in. Post-recovery accuracy must come back
 * to within a few points of the pre-drift run, while an identical run
 * without the supervisor stays collapsed for good.
 */
#include <gtest/gtest.h>

#include "blockdev/resilient_device.h"
#include "core/accuracy.h"
#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "workload/synthetic.h"

namespace ssdcheck {
namespace {

using core::AccuracyResult;
using core::FeatureSet;
using core::HealthState;
using core::HealthSupervisor;
using core::SsdCheck;

constexpr uint64_t kPhaseRequests = 15000;
constexpr uint64_t kDriftPhaseRequests = 40000;

/** Preset A with the buffer shrinking 4x early in the drift phase. */
ssd::SsdConfig
driftedCfg()
{
    ssd::SsdConfig cfg = ssd::makePreset(ssd::SsdModel::A);
    cfg.faults.name = "drift";
    cfg.faults.driftAfterRequests = kPhaseRequests + 5000;
    cfg.faults.driftKind = ssd::DriftKind::ShrinkBuffer;
    cfg.faults.driftBufferFactor = 0.25;
    return cfg;
}

/** Diagnose once on a healthy twin (same model, no faults). */
FeatureSet
diagnoseTwin()
{
    ssd::SsdConfig clean = driftedCfg();
    clean.faults = ssd::FaultProfile{};
    ssd::SsdDevice cleanDev(clean);
    core::DiagnosisRunner runner(cleanDev, core::DiagnosisConfig{});
    return runner.extractFeatures();
}

struct E2eOutcome
{
    AccuracyResult pre, drift, post;
    HealthState finalState = HealthState::Healthy;
    core::HealthCounters counters;
    uint32_t swapPages = 0;
    sim::SimTime start, end;
};

/** Three-phase run: pre-drift, drift + (maybe) repair, post. */
E2eOutcome
runThreePhases(bool withSupervisor)
{
    const FeatureSet fs = diagnoseTwin();
    EXPECT_TRUE(fs.bufferModelUsable());

    ssd::SsdDevice dev(driftedCfg());
    dev.precondition(); // instant prefill; no requests consumed
    blockdev::ResilientDevice rdev(dev);

    SsdCheck check(fs);
    std::unique_ptr<HealthSupervisor> sup;
    if (withSupervisor)
        sup = std::make_unique<HealthSupervisor>(check, rdev);

    const auto tracePre = workload::buildRwMixedTrace(
        kPhaseRequests, dev.capacityPages(), 77);
    const auto traceDrift = workload::buildRwMixedTrace(
        kDriftPhaseRequests, dev.capacityPages(), 78);
    const auto tracePost = workload::buildRwMixedTrace(
        kPhaseRequests, dev.capacityPages(), 79);

    E2eOutcome out;
    sim::SimTime t;
    out.start = t;
    out.pre = core::evaluatePredictionAccuracy(rdev, check, tracePre, t,
                                               &t, sup.get());
    EXPECT_EQ(dev.faultCounters().driftEvents, 0u)
        << "drift must not fire before phase one ends";
    out.drift = core::evaluatePredictionAccuracy(rdev, check, traceDrift,
                                                 t, &t, sup.get());
    EXPECT_EQ(dev.faultCounters().driftEvents, 1u);
    out.post = core::evaluatePredictionAccuracy(rdev, check, tracePost, t,
                                                &t, sup.get());
    out.end = t;
    if (sup) {
        out.finalState = sup->state();
        out.counters = sup->counters();
        out.swapPages = sup->lastSwapPages();
    }
    return out;
}

TEST(SupervisorE2eTest, OnlineRediagnosisRestoresAccuracyAfterDrift)
{
    const E2eOutcome run = runThreePhases(true);

    // Phase one: the diagnosed model works.
    EXPECT_GT(run.pre.hlAccuracy(), 0.6);
    EXPECT_GT(run.post.hlTotal, 100u);

    // The supervisor walked the whole loop: confirmed drift,
    // re-diagnosed online, hot-swapped, and survived probation.
    EXPECT_GE(run.counters.degradedEntries, 1u);
    EXPECT_GE(run.counters.rediagnoseAttempts, 1u);
    EXPECT_GE(run.counters.hotSwaps, 1u);
    EXPECT_TRUE(run.finalState == HealthState::Healthy ||
                run.finalState == HealthState::Recovered)
        << "final state: " << core::toString(run.finalState);

    // The re-diagnosed buffer is the post-drift one: preset A's
    // 62-page buffer shrank 4x, so the swap must land near 15 pages —
    // far below the stale feature.
    EXPECT_GE(run.swapPages, 4u);
    EXPECT_LT(run.swapPages, 31u);

    // Acceptance: post-recovery accuracy within 5 points of pre-drift.
    EXPECT_GE(run.post.hlAccuracy(), run.pre.hlAccuracy() - 0.05)
        << "pre " << run.pre.hlAccuracy() << " post "
        << run.post.hlAccuracy();

    // Probe I/O stayed inside its device-time budget (small slack:
    // the budget is checked before each submission, so at most one
    // blocked probe can overshoot).
    const double budget = core::HealthSupervisorConfig{}.probeBudgetFraction;
    const sim::SimDuration elapsed = run.end - run.start;
    EXPECT_GT(run.counters.probesIssued, 0u);
    EXPECT_LE(static_cast<double>(run.counters.probeBusyNs),
              budget * static_cast<double>(elapsed) +
                  static_cast<double>(sim::milliseconds(100)));
}

TEST(SupervisorE2eTest, UnsupervisedRunStaysCollapsed)
{
    const E2eOutcome run = runThreePhases(false);
    EXPECT_GT(run.pre.hlAccuracy(), 0.6);
    // Without the supervisor the stale model never comes back: HL
    // recall stays far below the pre-drift level (or the calibrator
    // harmlessly disabled it, which also means no HL recall).
    EXPECT_LT(run.post.hlAccuracy(), run.pre.hlAccuracy() - 0.2);
}

} // namespace
} // namespace ssdcheck
