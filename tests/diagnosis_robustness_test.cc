/**
 * @file Robustness sweeps for the diagnosis: the extracted features
 * must not depend on the snippet RNG seed or the device noise draw.
 */
#include <gtest/gtest.h>

#include "blockdev/resilient_device.h"
#include "core/diagnosis.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::core {
namespace {

/** (device seed salt, diagnosis seed) pairs. */
class DiagnosisSeedSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>>
{
};

TEST_P(DiagnosisSeedSweep, SsdARecoveredUnderAnySeed)
{
    const auto [salt, seed] = GetParam();
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A, salt));
    DiagnosisConfig cfg;
    cfg.seed = seed;
    DiagnosisRunner runner(dev, cfg);
    const FeatureSet fs = runner.extractFeatures();
    EXPECT_TRUE(fs.allocationVolumeBits.empty());
    EXPECT_TRUE(fs.gcVolumeBits.empty());
    EXPECT_EQ(fs.bufferBytes, 248u * 1024);
    EXPECT_EQ(fs.bufferType, BufferTypeFeature::Back);
}

TEST_P(DiagnosisSeedSweep, SsdDRecoveredUnderAnySeed)
{
    const auto [salt, seed] = GetParam();
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::D, salt));
    DiagnosisConfig cfg;
    cfg.seed = seed;
    DiagnosisRunner runner(dev, cfg);
    const FeatureSet fs = runner.extractFeatures();
    EXPECT_EQ(fs.allocationVolumeBits, (std::vector<uint32_t>{17}));
    EXPECT_EQ(fs.gcVolumeBits, (std::vector<uint32_t>{17}));
    EXPECT_EQ(fs.bufferBytes, 128u * 1024);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DiagnosisSeedSweep,
    ::testing::Values(std::make_tuple(0ULL, 99ULL),
                      std::make_tuple(1ULL, 7777ULL),
                      std::make_tuple(2ULL, 31337ULL)));

TEST(DiagnosisRobustnessTest, ThinktimeSetIsConfigurable)
{
    // A different (still multi-point) thinktime set must reach the
    // same buffer size: the paper verifies size consistency this way.
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::B));
    DiagnosisConfig cfg;
    cfg.thinktimes = {sim::microseconds(700), sim::microseconds(2000)};
    DiagnosisRunner runner(dev, cfg);
    runner.sequentialFill();
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 248u * 1024);
}

TEST(DiagnosisRobustnessTest, MaxBitOverrideLimitsTheScan)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    DiagnosisConfig cfg;
    cfg.maxBit = 8;
    DiagnosisRunner runner(dev, cfg);
    const AllocVolumeScan scan = runner.scanAllocationVolumes();
    ASSERT_FALSE(scan.perBitMbps.empty());
    EXPECT_EQ(scan.perBitMbps.back().first, 8u);
    EXPECT_EQ(scan.perBitMbps.front().first, 3u);
}

TEST(DiagnosisRobustnessTest, PreconditionFalseSkipsDeviceReset)
{
    // With precondition disabled, the runner must not purge a device
    // the caller already prepared.
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    dev.precondition();
    uint64_t stamp = 4242;
    dev.submitDetailed(blockdev::makeWrite4k(7), sim::kTimeZero, nullptr,
                       &stamp,
                       nullptr);
    DiagnosisConfig cfg;
    cfg.precondition = false;
    cfg.maxBit = 5; // keep it quick
    DiagnosisRunner runner(dev, cfg, sim::kTimeZero + sim::milliseconds(1));
    runner.scanAllocationVolumes();
    uint64_t got = 0;
    // The write survived (no purge) — though later scan writes may
    // have overwritten it, the page must still be mapped.
    EXPECT_TRUE(dev.peekPage(7, &got));
}

TEST(DiagnosisRobustnessTest, TaintedCompletionsDoNotSkewBufferSize)
{
    // Frequent hard UNC reads land MediaError completions (riding the
    // full retry-exhaustion latency) on exactly the read stream the
    // write-buffer snippets measure. Failed completions must be
    // dropped from the spike series, or every error would read as a
    // flush boundary. (Transient in-device retries are excluded here
    // on purpose: those complete Ok and are invisible to a black-box
    // host, so no host-side filter can exist for them.)
    ssd::SsdConfig cfg = ssd::makePreset(ssd::SsdModel::B);
    cfg.faults.name = "flaky";
    cfg.faults.readUncProbability = 0.05;
    cfg.faults.readUncHardFraction = 1.0;
    ssd::SsdDevice dev(cfg);

    DiagnosisRunner runner(dev, DiagnosisConfig{});
    runner.sequentialFill();
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 248u * 1024);
    EXPECT_GT(dev.faultCounters().readUncHard, 0u);
}

TEST(DiagnosisRobustnessTest, HostRetriedCompletionsAlsoExcluded)
{
    // Through the resilient path the same faults surface as Ok
    // completions with attempts > 1 and retry-loop latency; those are
    // just as tainted and must not skew the extracted size either.
    ssd::SsdConfig cfg = ssd::makePreset(ssd::SsdModel::B);
    cfg.faults.name = "flaky";
    cfg.faults.readUncProbability = 0.05;
    cfg.faults.readUncHardFraction = 1.0;
    ssd::SsdDevice dev(cfg);
    blockdev::ResilientDevice rdev(dev);

    DiagnosisRunner runner(rdev, DiagnosisConfig{});
    runner.sequentialFill();
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 248u * 1024);
    EXPECT_GT(rdev.counters().retries, 0u);
    EXPECT_GT(rdev.counters().submissions, 0u);
}

} // namespace
} // namespace ssdcheck::core
