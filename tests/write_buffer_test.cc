/** @file Unit and property tests for ssd/write_buffer.h. */
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "ssd/write_buffer.h"

namespace ssdcheck::ssd {
namespace {

using core::Lpn;

TEST(WriteBufferTest, FillsToCapacity)
{
    WriteBuffer b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.add(Lpn{1}, 10));
    EXPECT_FALSE(b.add(Lpn{2}, 20));
    EXPECT_FALSE(b.add(Lpn{3}, 30));
    EXPECT_TRUE(b.add(Lpn{4}, 40)); // reports full
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.fill(), 4u);
}

TEST(WriteBufferTest, SlotPerWriteEvenForSameLpn)
{
    // The paper sizes buffers by counting writes between flushes,
    // which requires no coalescing.
    WriteBuffer b(3);
    b.add(Lpn{7}, 1);
    b.add(Lpn{7}, 2);
    EXPECT_EQ(b.fill(), 2u);
}

TEST(WriteBufferTest, LookupReturnsNewestPayload)
{
    WriteBuffer b(4);
    b.add(Lpn{7}, 1);
    b.add(Lpn{9}, 5);
    b.add(Lpn{7}, 2);
    uint64_t payload = 0;
    EXPECT_TRUE(b.lookup(Lpn{7}, &payload));
    EXPECT_EQ(payload, 2u);
    EXPECT_TRUE(b.lookup(Lpn{9}, &payload));
    EXPECT_EQ(payload, 5u);
    EXPECT_FALSE(b.lookup(Lpn{8}, &payload));
}

TEST(WriteBufferTest, DrainReturnsArrivalOrderAndEmpties)
{
    WriteBuffer b(4);
    b.add(Lpn{3}, 30);
    b.add(Lpn{1}, 10);
    b.add(Lpn{2}, 20);
    const auto entries = b.drain();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].lpn, Lpn{3});
    EXPECT_EQ(entries[1].lpn, Lpn{1});
    EXPECT_EQ(entries[2].lpn, Lpn{2});
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.lookup(Lpn{3}, nullptr));
}

TEST(WriteBufferTest, ReusableAfterDrain)
{
    WriteBuffer b(2);
    b.add(Lpn{1}, 1);
    b.add(Lpn{2}, 2);
    b.drain();
    EXPECT_FALSE(b.add(Lpn{5}, 5));
    uint64_t payload = 0;
    EXPECT_TRUE(b.lookup(Lpn{5}, &payload));
    EXPECT_EQ(payload, 5u);
}

TEST(WriteBufferTest, ClearDiscards)
{
    WriteBuffer b(4);
    b.add(Lpn{1}, 1);
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.lookup(Lpn{1}, nullptr));
}

TEST(WriteBufferTest, LookupWithNullPayloadPointer)
{
    WriteBuffer b(2);
    b.add(Lpn{1}, 42);
    EXPECT_TRUE(b.lookup(Lpn{1}, nullptr));
}

TEST(WriteBufferTest, DrainedEntriesStayValidUntilNextCycle)
{
    // drain() returns a reused scratch buffer: the reference must keep
    // the drained contents until the buffer is touched again, so the
    // flush loop in Volume can iterate it without a copy.
    WriteBuffer b(3);
    b.add(Lpn{1}, 10);
    b.add(Lpn{2}, 20);
    const std::vector<WriteBuffer::Entry> &first = b.drain();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].lpn, Lpn{1});
    EXPECT_EQ(first[1].payload, 20u);

    b.add(Lpn{3}, 30);
    const std::vector<WriteBuffer::Entry> &second = b.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].lpn, Lpn{3});
    EXPECT_EQ(&first, &second); // same storage, reused
}

/**
 * Property test: the open-addressing newest-entry index is equivalent
 * to a naive last-writer-wins map through randomized add / lookup /
 * drain / clear / capacity-drift schedules.
 */
TEST(WriteBufferPropertyTest, LookupMatchesNaiveNewestMap)
{
    WriteBuffer b(32);
    sim::Rng rng(20260807);
    std::unordered_map<Lpn, uint64_t> naive;
    std::vector<WriteBuffer::Entry> naiveFifo;

    for (int op = 0; op < 20000; ++op) {
        // Sparse, clustered lpn space to force collisions and probes.
        const Lpn lpn{rng.nextBelow(64) * 0x10001ULL};
        const uint64_t payload = static_cast<uint64_t>(op);
        const bool full = b.add(lpn, payload);
        naive[lpn] = payload;
        naiveFifo.push_back({lpn, payload});
        EXPECT_EQ(full, naiveFifo.size() >= b.capacity());

        const Lpn probe{rng.nextBelow(64) * 0x10001ULL};
        uint64_t got = 0;
        const auto it = naive.find(probe);
        if (it == naive.end()) {
            EXPECT_FALSE(b.lookup(probe, &got)) << "op " << op;
        } else {
            ASSERT_TRUE(b.lookup(probe, &got)) << "op " << op;
            EXPECT_EQ(got, it->second) << "op " << op;
        }

        if (full || op % 277 == 0) {
            const std::vector<WriteBuffer::Entry> &drained = b.drain();
            ASSERT_EQ(drained.size(), naiveFifo.size()) << "op " << op;
            for (size_t i = 0; i < drained.size(); ++i) {
                EXPECT_EQ(drained[i].lpn, naiveFifo[i].lpn);
                EXPECT_EQ(drained[i].payload, naiveFifo[i].payload);
            }
            naive.clear();
            naiveFifo.clear();
        }
        if (op % 1111 == 0) {
            b.clear();
            naive.clear();
            naiveFifo.clear();
        }
        if (op % 3001 == 0)
            b.setCapacity(8 + static_cast<uint32_t>(rng.nextBelow(48)));
    }
}

} // namespace
} // namespace ssdcheck::ssd
