/** @file Unit tests for ssd/write_buffer.h. */
#include <gtest/gtest.h>

#include "ssd/write_buffer.h"

namespace ssdcheck::ssd {
namespace {

TEST(WriteBufferTest, FillsToCapacity)
{
    WriteBuffer b(4);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.add(1, 10));
    EXPECT_FALSE(b.add(2, 20));
    EXPECT_FALSE(b.add(3, 30));
    EXPECT_TRUE(b.add(4, 40)); // reports full
    EXPECT_TRUE(b.full());
    EXPECT_EQ(b.fill(), 4u);
}

TEST(WriteBufferTest, SlotPerWriteEvenForSameLpn)
{
    // The paper sizes buffers by counting writes between flushes,
    // which requires no coalescing.
    WriteBuffer b(3);
    b.add(7, 1);
    b.add(7, 2);
    EXPECT_EQ(b.fill(), 2u);
}

TEST(WriteBufferTest, LookupReturnsNewestPayload)
{
    WriteBuffer b(4);
    b.add(7, 1);
    b.add(9, 5);
    b.add(7, 2);
    uint64_t payload = 0;
    EXPECT_TRUE(b.lookup(7, &payload));
    EXPECT_EQ(payload, 2u);
    EXPECT_TRUE(b.lookup(9, &payload));
    EXPECT_EQ(payload, 5u);
    EXPECT_FALSE(b.lookup(8, &payload));
}

TEST(WriteBufferTest, DrainReturnsArrivalOrderAndEmpties)
{
    WriteBuffer b(4);
    b.add(3, 30);
    b.add(1, 10);
    b.add(2, 20);
    const auto entries = b.drain();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].lpn, 3u);
    EXPECT_EQ(entries[1].lpn, 1u);
    EXPECT_EQ(entries[2].lpn, 2u);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.lookup(3, nullptr));
}

TEST(WriteBufferTest, ReusableAfterDrain)
{
    WriteBuffer b(2);
    b.add(1, 1);
    b.add(2, 2);
    b.drain();
    EXPECT_FALSE(b.add(5, 5));
    uint64_t payload = 0;
    EXPECT_TRUE(b.lookup(5, &payload));
    EXPECT_EQ(payload, 5u);
}

TEST(WriteBufferTest, ClearDiscards)
{
    WriteBuffer b(4);
    b.add(1, 1);
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.lookup(1, nullptr));
}

TEST(WriteBufferTest, LookupWithNullPayloadPointer)
{
    WriteBuffer b(2);
    b.add(1, 42);
    EXPECT_TRUE(b.lookup(1, nullptr));
}

} // namespace
} // namespace ssdcheck::ssd
