/** @file Unit tests for core/prediction_engine.h (EBT/EET logic). */
#include <gtest/gtest.h>

#include "blockdev/request.h"
#include "core/prediction_engine.h"

namespace ssdcheck::core {
namespace {

using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::kTimeZero;
using sim::microseconds;
using sim::milliseconds;
using sim::SimTime;

FeatureSet
backFeatures()
{
    FeatureSet fs;
    fs.bufferBytes = 4 * 4096; // 4-page buffer for short tests
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(2);
    return fs;
}

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : calib_(), monitor_(), engine_(backFeatures(), calib_, monitor_)
    {
        calib_.seedFlushOverhead(milliseconds(2));
    }

    Calibrator calib_;
    LatencyMonitor monitor_;
    PredictionEngine engine_;
};

TEST_F(EngineTest, FreshEngineSingleVolume)
{
    EXPECT_EQ(engine_.numVolumes(), 1u);
    EXPECT_EQ(engine_.ebt(0), kTimeZero);
}

TEST_F(EngineTest, PlainWritePredictedNl)
{
    const Prediction p = engine_.predict(makeWrite4k(0), kTimeZero + microseconds(100));
    EXPECT_FALSE(p.hl);
    EXPECT_FALSE(p.flushExpected);
    EXPECT_EQ(p.eet, calib_.writeService());
}

TEST_F(EngineTest, FlushExpectedAtBufferCapacity)
{
    for (int i = 0; i < 3; ++i)
        engine_.onSubmit(makeWrite4k(i), kTimeZero + microseconds(i * 10));
    const Prediction p = engine_.predict(makeWrite4k(3), kTimeZero + microseconds(40));
    EXPECT_TRUE(p.flushExpected);
    // Back type: the triggering write itself is not delayed.
    EXPECT_FALSE(p.hl);
}

TEST_F(EngineTest, FlushRaisesEbtAndBlocksPredictedReads)
{
    for (int i = 0; i < 4; ++i)
        engine_.onSubmit(makeWrite4k(i), kTimeZero + microseconds(i * 10));
    EXPECT_GT(engine_.ebt(0), kTimeZero + microseconds(30));
    const Prediction p = engine_.predict(makeRead4k(100), kTimeZero + microseconds(40));
    EXPECT_TRUE(p.hl); // read during the predicted flush window
    EXPECT_GT(p.eet, microseconds(250));
}

TEST_F(EngineTest, ReadAfterPredictedFlushEndIsNl)
{
    for (int i = 0; i < 4; ++i)
        engine_.onSubmit(makeWrite4k(i), kTimeZero + microseconds(i * 10));
    const SimTime after = engine_.ebt(0) + microseconds(10);
    const Prediction p = engine_.predict(makeRead4k(100), after);
    EXPECT_FALSE(p.hl);
}

TEST_F(EngineTest, ForeTypeTriggerWritePredictedHl)
{
    FeatureSet fs = backFeatures();
    fs.bufferType = BufferTypeFeature::Fore;
    Calibrator calib;
    calib.seedFlushOverhead(milliseconds(2));
    LatencyMonitor monitor;
    PredictionEngine eng(fs, calib, monitor);
    for (int i = 0; i < 3; ++i)
        eng.onSubmit(makeWrite4k(i), kTimeZero + microseconds(i * 10));
    const Prediction p = eng.predict(makeWrite4k(3), kTimeZero + microseconds(40));
    EXPECT_TRUE(p.flushExpected);
    EXPECT_TRUE(p.hl); // fore: ack waits for the flush
}

TEST_F(EngineTest, ReadTriggerPredictsHlReadOnNonEmptyBuffer)
{
    FeatureSet fs = backFeatures();
    fs.flushAlgorithms.readTrigger = true;
    Calibrator calib;
    calib.seedFlushOverhead(milliseconds(2));
    LatencyMonitor monitor;
    PredictionEngine eng(fs, calib, monitor);
    eng.onSubmit(makeWrite4k(0), kTimeZero);
    const Prediction p = eng.predict(makeRead4k(9), kTimeZero + microseconds(10));
    EXPECT_TRUE(p.hl);
    EXPECT_TRUE(p.flushExpected);
    // Submitting the read consumes the modeled buffer and starts the
    // assumed flush; once that window passes, reads are NL again.
    eng.onSubmit(makeRead4k(9), kTimeZero + microseconds(10));
    const Prediction during = eng.predict(makeRead4k(9), kTimeZero + microseconds(20));
    EXPECT_TRUE(during.hl); // still inside the flush EBT window
    EXPECT_FALSE(during.flushExpected); // but no new flush expected
    const Prediction after =
        eng.predict(makeRead4k(9), eng.ebt(0) + microseconds(10));
    EXPECT_FALSE(after.hl);
}

TEST_F(EngineTest, VolumeSelectorRoutesByBits)
{
    FeatureSet fs = backFeatures();
    fs.allocationVolumeBits = {10};
    Calibrator calib;
    LatencyMonitor monitor;
    PredictionEngine eng(fs, calib, monitor);
    EXPECT_EQ(eng.numVolumes(), 2u);
    blockdev::IoRequest vol1 = makeWrite4k((1ULL << 10) / 8);
    EXPECT_EQ(eng.volumeOf(makeWrite4k(0)), 0u);
    EXPECT_EQ(eng.volumeOf(vol1), 1u);
    // Filling volume 0's buffer must not move volume 1's EBT.
    for (int i = 0; i < 4; ++i)
        eng.onSubmit(makeWrite4k(i), kTimeZero + microseconds(i));
    EXPECT_GT(eng.ebt(0), kTimeZero);
    EXPECT_EQ(eng.ebt(1), kTimeZero);
}

TEST_F(EngineTest, GcUnionBitsUsedForVolumes)
{
    FeatureSet fs = backFeatures();
    fs.allocationVolumeBits = {10};
    fs.gcVolumeBits = {10, 12};
    Calibrator calib;
    LatencyMonitor monitor;
    PredictionEngine eng(fs, calib, monitor);
    EXPECT_EQ(eng.numVolumes(), 4u);
}

TEST_F(EngineTest, OnCompleteClassifiesAndCalibrates)
{
    const auto w = makeWrite4k(0);
    const Prediction p = engine_.predict(w, kTimeZero);
    engine_.onSubmit(w, kTimeZero);
    const bool hl =
        engine_.onComplete(w, p, kTimeZero, kTimeZero + microseconds(40));
    EXPECT_FALSE(hl);
    // NL write observation moved the write-service EWMA toward 40us.
    EXPECT_NE(calib_.writeService(),
              CalibratorConfig{}.initialWriteService);
}

TEST_F(EngineTest, UnexpectedHlStreakResyncsBufferCounter)
{
    // Two consecutive unexpected HL completions reset the counter.
    engine_.onSubmit(makeWrite4k(0), kTimeZero);
    engine_.onSubmit(makeWrite4k(1), kTimeZero);
    EXPECT_EQ(engine_.wbModel(0).counter(), 2u);
    Prediction nl;
    nl.hl = false;
    engine_.onComplete(makeWrite4k(2), nl, kTimeZero + microseconds(10),
                       kTimeZero + microseconds(800));
    EXPECT_EQ(engine_.wbModel(0).counter(), 2u); // first strike only
    engine_.onComplete(makeWrite4k(3), nl, kTimeZero + microseconds(900),
                       kTimeZero + microseconds(1700));
    EXPECT_EQ(engine_.wbModel(0).counter(), 0u); // resynced
}

TEST_F(EngineTest, CorrectHlPredictionClearsStreak)
{
    engine_.onSubmit(makeWrite4k(0), kTimeZero);
    Prediction nl;
    nl.hl = false;
    Prediction hl;
    hl.hl = true;
    engine_.onComplete(makeWrite4k(1), nl, kTimeZero, kTimeZero + microseconds(800));
    engine_.onComplete(makeRead4k(2), hl, kTimeZero + microseconds(900),
                       kTimeZero + microseconds(1900));
    engine_.onComplete(makeWrite4k(3), nl, kTimeZero + microseconds(2000),
                       kTimeZero + microseconds(2800));
    // Streak was interrupted: still only one strike, no resync.
    EXPECT_EQ(engine_.wbModel(0).counter(), 1u);
}

TEST_F(EngineTest, NlReadPullsBackOverpredictedEbt)
{
    for (int i = 0; i < 4; ++i)
        engine_.onSubmit(makeWrite4k(i), kTimeZero);
    const SimTime inflatedEbt = engine_.ebt(0);
    ASSERT_GT(inflatedEbt, kTimeZero);
    // An NL read completing earlier proves the device is idle.
    Prediction p;
    p.hl = false;
    engine_.onComplete(makeRead4k(50), p, kTimeZero + microseconds(10),
                       kTimeZero + microseconds(100));
    EXPECT_LE(engine_.ebt(0), kTimeZero + microseconds(100));
}

TEST_F(EngineTest, GcObservationFeedsGcModel)
{
    Prediction p;
    p.hl = true;
    engine_.onComplete(makeWrite4k(0), p, kTimeZero, kTimeZero + milliseconds(20));
    EXPECT_EQ(engine_.gcModel(0).history().size(), 1u);
}

} // namespace
} // namespace ssdcheck::core
