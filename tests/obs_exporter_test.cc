/**
 * @file
 * Conformance and determinism tests of the live telemetry plane:
 * Prometheus text-exposition rendering (HELP/TYPE lines, label
 * escaping, cumulative histogram buckets, quantile gauges), the
 * snapshot hub's immutability, the /healthz staleness verdict, the
 * embedded HTTP server's endpoint/error contract, and the two
 * result-identity guarantees — the grid publishes the same final
 * snapshot at any job count, and attaching a hub to a run leaves its
 * checkpoint bytes and metrics JSON untouched.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporter/http_server.h"
#include "obs/exporter/telemetry.h"
#include "obs/registry.h"
#include "perf/grid.h"
#include "recovery/run_state.h"
#include "ssd/presets.h"
#include "workload/snia_synth.h"

namespace ssdcheck::obs {
namespace {

TEST(Exposition, EscapeLabelValue)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("line\nbreak"), "line\\nbreak");
}

/** A small registry exercising all three metric types. */
void
fillRegistry(Registry *reg)
{
    reg->counter("requests_total", {{"device", "A"}}).inc(3);
    reg->gauge("queue_depth").set(-2);
    Histogram h = reg->histogram("latency_ns", {100, 200});
    h.observe(50);
    h.observe(150);
    h.observe(1000);
}

TEST(Exposition, RenderPrometheusConformance)
{
    Registry reg;
    fillRegistry(&reg);
    TelemetryHub hub;
    hub.publish(reg, RunStatus{});
    const auto snap = hub.snapshot();
    ASSERT_NE(snap, nullptr);
    const std::string text = renderPrometheus(*snap);

    // Counter family with HELP/TYPE and an escaped-safe label block.
    EXPECT_NE(text.find("# HELP ssdcheck_requests_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE ssdcheck_requests_total counter\n"
                        "ssdcheck_requests_total{device=\"A\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE ssdcheck_queue_depth gauge\n"
                        "ssdcheck_queue_depth -2\n"),
              std::string::npos);

    // Histogram: cumulative buckets, +Inf equals _count, sum exact.
    EXPECT_NE(text.find("# TYPE ssdcheck_latency_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_bucket{le=\"100\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_bucket{le=\"200\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_sum 1200\n"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_count 3\n"),
              std::string::npos);

    // Quantile gauges match the shared interpolation helper exactly.
    const MetricSnapshot *hist = nullptr;
    for (const MetricSnapshot &m : snap->metrics)
        if (m.name == "latency_ns")
            hist = &m;
    ASSERT_NE(hist, nullptr);
    EXPECT_NE(text.find("# TYPE ssdcheck_latency_ns_p50 gauge\n"
                        "ssdcheck_latency_ns_p50 " +
                        std::to_string(histogramQuantile(hist->hist, 500)) +
                        "\n"),
              std::string::npos);
    EXPECT_NE(text.find("ssdcheck_latency_ns_p999 " +
                        std::to_string(histogramQuantile(hist->hist, 999)) +
                        "\n"),
              std::string::npos);
}

TEST(Exposition, ByteStableAcrossRepeatPublishes)
{
    Registry reg;
    fillRegistry(&reg);
    TelemetryHub hub;
    hub.publish(reg, RunStatus{});
    const std::string first = renderPrometheus(*hub.snapshot());
    hub.publish(reg, RunStatus{});
    const std::string second = renderPrometheus(*hub.snapshot());
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, renderPrometheus(*hub.snapshot()));
}

TEST(TelemetryHubTest, SnapshotIsAnImmutableDeepCopy)
{
    TelemetryHub hub;
    EXPECT_EQ(hub.snapshot(), nullptr);
    EXPECT_EQ(hub.sequence(), 0u);

    Registry reg;
    Counter c = reg.counter("reqs");
    c.inc(5);
    RunStatus st;
    st.phase = "run";
    hub.publish(reg, st);
    const auto snap = hub.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->sequence, 1u);

    // Mutating the live registry must not leak into the snapshot.
    c.inc(100);
    ASSERT_EQ(snap->metrics.size(), 1u);
    EXPECT_EQ(snap->metrics[0].value, 5);

    hub.publish(reg, st);
    EXPECT_EQ(hub.sequence(), 2u);
    EXPECT_EQ(hub.snapshot()->metrics[0].value, 105);
    // The earlier shared_ptr still reads the old values.
    EXPECT_EQ(snap->metrics[0].value, 5);
}

TEST(TelemetryHubTest, RenderRunzCarriesRunStatus)
{
    Registry reg;
    fillRegistry(&reg);
    TelemetryHub hub;
    RunStatus st;
    st.phase = "chaos";
    st.cursor = 42;
    st.totalRequests = 100;
    st.simTimeNs = 777;
    st.breakerState = 2;
    st.shedTotal = 9;
    st.healthy = false;
    hub.publish(reg, st);
    const std::string json = renderRunz(*hub.snapshot());
    EXPECT_NE(json.find("\"sequence\":1"), std::string::npos);
    EXPECT_NE(json.find("\"phase\":\"chaos\""), std::string::npos);
    EXPECT_NE(json.find("\"cursor\":42"), std::string::npos);
    EXPECT_NE(json.find("\"total_requests\":100"), std::string::npos);
    EXPECT_NE(json.find("\"sim_time_ns\":777"), std::string::npos);
    EXPECT_NE(json.find("\"breaker_state\":2"), std::string::npos);
    EXPECT_NE(json.find("\"shed_total\":9"), std::string::npos);
    EXPECT_NE(json.find("\"healthy\":false"), std::string::npos);
    EXPECT_NE(json.find("\"metrics\":3"), std::string::npos);
}

TEST(HealthzTest, VerdictCoversMissingStaleAndUnhealthy)
{
    std::string body;
    EXPECT_FALSE(renderHealthz(nullptr, 1000, 100, &body));
    EXPECT_NE(body.find("no snapshot published"), std::string::npos);

    TelemetrySnapshot snap;
    snap.wallNs = 1000;
    snap.run.healthy = true;
    EXPECT_TRUE(renderHealthz(&snap, 1050, 100, &body));
    EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);

    // Stale: age 200ns against a 100ns budget.
    EXPECT_FALSE(renderHealthz(&snap, 1200, 100, &body));
    EXPECT_NE(body.find("\"healthy\":false"), std::string::npos);

    // Fresh but the publisher itself reported unhealthy.
    snap.run.healthy = false;
    EXPECT_FALSE(renderHealthz(&snap, 1050, 100, &body));
    EXPECT_NE(body.find("\"run_healthy\":false"), std::string::npos);
}

/** Small two-shard grid (mirrors perf_grid_test's smallSpec). */
perf::GridSpec
smallSpec()
{
    perf::GridSpec s;
    s.models = {ssd::SsdModel::A, ssd::SsdModel::D};
    s.workloads = {workload::SniaWorkload::TPCE};
    s.scale = 0.005;
    return s;
}

TEST(GridTelemetryTest, FinalSnapshotIdenticalAtAnyJobCount)
{
    perf::GridSpec spec = smallSpec();
    TelemetryHub serialHub;
    spec.telemetry = &serialHub;
    const perf::GridResult serial = perf::runGrid(spec, 1);
    TelemetryHub parallelHub;
    spec.telemetry = &parallelHub;
    const perf::GridResult parallel = perf::runGrid(spec, 4);

    const auto a = serialHub.snapshot();
    const auto b = parallelHub.snapshot();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->run.phase, "done");
    // One publish per shard plus the final one, in both runs.
    EXPECT_EQ(a->sequence, 3u);
    EXPECT_EQ(b->sequence, 3u);
    EXPECT_EQ(renderPrometheus(*a), renderPrometheus(*b));
    EXPECT_EQ(renderRunz(*a), renderRunz(*b));

    // Attaching a hub never changes cell results.
    spec.telemetry = nullptr;
    const perf::GridResult plain = perf::runGrid(spec, 2);
    ASSERT_EQ(plain.cells.size(), serial.cells.size());
    for (size_t i = 0; i < plain.cells.size(); ++i) {
        EXPECT_EQ(plain.cells[i].requests, serial.cells[i].requests);
        EXPECT_EQ(plain.cells[i].simEnd, serial.cells[i].simEnd);
        EXPECT_EQ(plain.cells[i].accuracy.hlCorrect,
                  serial.cells[i].accuracy.hlCorrect);
    }
}

/** Raw HTTP exchange for request shapes httpGet cannot produce. */
std::string
rawExchange(uint16_t port, const std::string &request)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return std::string();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                sizeof addr) != 0) {
        close(fd);
        return std::string();
    }
    (void)!write(fd, request.data(), request.size());
    std::string out;
    char buf[1024];
    ssize_t n;
    while ((n = read(fd, buf, sizeof buf)) > 0)
        out.append(buf, static_cast<size_t>(n));
    close(fd);
    return out;
}

TEST(HttpServerTest, EndpointAndErrorContract)
{
    TelemetryHub hub;
    HttpServer srv(hub);
    std::string err;
    ASSERT_TRUE(srv.start(0, &err)) << err;
    ASSERT_NE(srv.port(), 0);

    // Before the first publish every data endpoint answers 503.
    int status = 0;
    std::string body;
    ASSERT_TRUE(httpGet(srv.port(), "/metrics", &status, &body));
    EXPECT_EQ(status, 503);
    ASSERT_TRUE(httpGet(srv.port(), "/healthz", &status, &body));
    EXPECT_EQ(status, 503);

    Registry reg;
    fillRegistry(&reg);
    RunStatus st;
    st.phase = "run";
    hub.publish(reg, st);

    ASSERT_TRUE(httpGet(srv.port(), "/metrics", &status, &body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("ssdcheck_requests_total{device=\"A\"} 3"),
              std::string::npos);
    EXPECT_EQ(body, renderPrometheus(*hub.snapshot()));

    ASSERT_TRUE(httpGet(srv.port(), "/runz", &status, &body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"phase\":\"run\""), std::string::npos);

    srv.setStaleNs(10u * 1000 * 1000 * 1000);
    ASSERT_TRUE(httpGet(srv.port(), "/healthz", &status, &body));
    EXPECT_EQ(status, 200);
    // Shrink the staleness budget to 1ns: the snapshot is now stale.
    srv.setStaleNs(1);
    usleep(2000);
    ASSERT_TRUE(httpGet(srv.port(), "/healthz", &status, &body));
    EXPECT_EQ(status, 503);
    EXPECT_NE(body.find("\"healthy\":false"), std::string::npos);

    ASSERT_TRUE(httpGet(srv.port(), "/nope", &status, &body));
    EXPECT_EQ(status, 404);

    const std::string post =
        rawExchange(srv.port(), "POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("405"), std::string::npos);
    const std::string malformed =
        rawExchange(srv.port(), "complete garbage\r\n\r\n");
    EXPECT_NE(malformed.find("400 Bad Request"), std::string::npos);

    srv.stop();
}

TEST(HttpServerTest, AttachingTheExporterDoesNotPerturbARun)
{
    recovery::RunParams params;
    params.scale = 0.01;
    params.faults = "hostile";
    std::string err;
    auto plain = recovery::CheckpointableRun::create(params, false, &err);
    ASSERT_NE(plain, nullptr) << err;
    auto scraped =
        recovery::CheckpointableRun::create(params, false, &err);
    ASSERT_NE(scraped, nullptr) << err;

    TelemetryHub hub;
    HttpServer srv(hub);
    ASSERT_TRUE(srv.start(0, &err)) << err;

    // One run publishes and is scraped mid-flight; the other runs
    // bare. Their final checkpoint bytes and metrics JSON must match
    // bit for bit.
    uint64_t steps = 0;
    while (!scraped->done()) {
        scraped->step();
        if (++steps % 256 == 0) {
            RunStatus st;
            st.phase = "run";
            st.cursor = scraped->cursor();
            hub.publish(scraped->registry(), st);
            int status = 0;
            std::string body;
            ASSERT_TRUE(
                httpGet(srv.port(), "/metrics", &status, &body));
            EXPECT_EQ(status, 200);
        }
    }
    srv.stop();
    while (!plain->done())
        plain->step();

    EXPECT_EQ(plain->checkpoint().serialize(),
              scraped->checkpoint().serialize());
    EXPECT_EQ(plain->metricsJson(), scraped->metricsJson());
}

} // namespace
} // namespace ssdcheck::obs
