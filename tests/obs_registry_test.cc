/**
 * @file
 * Unit tests of the metrics registry: owned metrics get-or-create,
 * exported views over component-owned storage, histogram bucketing,
 * the sim-time timeline, and a golden JSON snapshot guarding the
 * byte-stable export format.
 */
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "sim/sim_time.h"

namespace ssdcheck::obs {
namespace {

TEST(Registry, CounterGetOrCreateSharesStorage)
{
    Registry reg;
    Counter a = reg.counter("reqs", {{"device", "A"}});
    Counter b = reg.counter("reqs", {{"device", "A"}});
    Counter other = reg.counter("reqs", {{"device", "B"}});
    a.inc();
    b.inc(2);
    other.inc(10);
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(reg.value("reqs", {{"device", "A"}}), 3);
    EXPECT_EQ(reg.value("reqs", {{"device", "B"}}), 10);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_FALSE(reg.value("reqs", {{"device", "C"}}).has_value());
    EXPECT_FALSE(reg.value("nope").has_value());
}

TEST(Registry, GaugeSetAndAdd)
{
    Registry reg;
    Gauge g = reg.gauge("depth");
    g.set(5);
    g.add(-2);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(reg.value("depth"), 3);
}

TEST(Registry, DefaultHandlesAreInertNotCrashes)
{
    Counter c;
    Gauge g;
    Histogram h;
    c.inc();
    g.set(7);
    h.observe(1);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, ExportedViewsReadLiveComponentState)
{
    Registry reg;
    uint64_t served = 0;
    int64_t busyNs = 0;
    uint8_t state = 2;
    reg.exportCounter("served", {{"device", "A"}}, &served);
    reg.exportGauge("busy_ns", {}, &busyNs);
    reg.exportGauge("state", {}, &state);
    served = 41;
    busyNs = -7;
    EXPECT_EQ(reg.value("served", {{"device", "A"}}), 41);
    EXPECT_EQ(reg.value("busy_ns"), -7);
    EXPECT_EQ(reg.value("state"), 2);
    state = 3; // views track the component, no re-export needed
    EXPECT_EQ(reg.value("state"), 3);
}

TEST(Registry, HistogramBucketsInclusiveUpperBound)
{
    Registry reg;
    Histogram h = reg.histogram("lat", {10, 20});
    h.observe(5);
    h.observe(10); // inclusive: lands in the le=10 bucket
    h.observe(15);
    h.observe(25); // +inf bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 55);
    // value() reports the observation count for histograms.
    EXPECT_EQ(reg.value("lat"), 4);
    const std::string json = reg.toJson(sim::kTimeZero);
    EXPECT_NE(json.find("\"buckets\":[{\"le\":10,\"count\":2},"
                        "{\"le\":20,\"count\":1},"
                        "{\"le\":\"+inf\",\"count\":1}]"),
              std::string::npos)
        << json;
}

TEST(Registry, HistogramQuantileInterpolatesWithinBucket)
{
    // 10 observations spread over two finite buckets + the +inf tail:
    // 4 in (0,100], 4 in (100,200], 2 above.
    HistogramData h;
    h.bounds = {100, 200};
    h.counts = {4, 4, 2};
    h.count = 10;
    // p50 -> rank 5, first observation of the (100,200] bucket.
    EXPECT_EQ(histogramQuantile(h, 500), 100 + 100 * 1 / 4);
    // p95 -> rank 10, the +inf bucket clamps to the last finite bound.
    EXPECT_EQ(histogramQuantile(h, 950), 200);
    EXPECT_EQ(histogramQuantile(h, 999), 200);
    // p1 -> rank 1, first observation of the first bucket.
    EXPECT_EQ(histogramQuantile(h, 10), 100 * 1 / 4);

    HistogramData empty;
    empty.bounds = {100};
    empty.counts = {0, 0};
    EXPECT_EQ(histogramQuantile(empty, 500), 0);
}

TEST(Registry, SnapshotMetricsDeepCopiesInRegistrationOrder)
{
    Registry reg;
    Counter c = reg.counter("reqs", {{"device", "A"}});
    c.inc(7);
    uint64_t served = 3;
    reg.exportCounter("served", {}, &served);
    Histogram h = reg.histogram("lat", {10});
    h.observe(4);

    const std::vector<MetricSnapshot> snap = reg.snapshotMetrics();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "reqs");
    EXPECT_EQ(snap[0].type, MetricSnapshot::Type::Counter);
    EXPECT_EQ(snap[0].value, 7);
    EXPECT_EQ(snap[1].name, "served");
    EXPECT_EQ(snap[1].value, 3);
    EXPECT_EQ(snap[2].type, MetricSnapshot::Type::Histogram);
    EXPECT_EQ(snap[2].hist.count, 1u);
    EXPECT_EQ(snap[2].hist.sum, 4);

    // Deep copy: later registry activity must not leak into the
    // snapshot (the exporter thread reads it lock-free).
    c.inc(100);
    served = 99;
    h.observe(5);
    EXPECT_EQ(snap[0].value, 7);
    EXPECT_EQ(snap[1].value, 3);
    EXPECT_EQ(snap[2].hist.count, 1u);
}

TEST(Registry, TimelineSamplesOnFedSimTime)
{
    Registry reg;
    Counter c = reg.counter("reqs");
    reg.enableTimeline(sim::milliseconds(1));
    reg.tick(sim::kTimeZero); // before the first interval: no sample
    EXPECT_EQ(reg.timelineSamples(), 0u);
    c.inc();
    reg.tick(sim::kTimeZero + sim::milliseconds(1)); // interval boundary
    c.inc(4);
    reg.tick(sim::kTimeZero + sim::milliseconds(1) + 10); // same window
    reg.tick(sim::kTimeZero + sim::milliseconds(5)); // idle gap: one sample
    EXPECT_EQ(reg.timelineSamples(), 2u);
    const std::string json =
        reg.toJson(sim::kTimeZero + sim::milliseconds(5));
    EXPECT_NE(json.find("\"timeline_interval_ns\":1000000"),
              std::string::npos);
    EXPECT_NE(json.find("{\"time_ns\":1000000,\"values\":[1]}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("{\"time_ns\":5000000,\"values\":[5]}"),
              std::string::npos)
        << json;
}

TEST(Registry, GoldenSnapshotJson)
{
    // Full-snapshot golden: guards name/label/type/value layout and
    // the no-float guarantee. Update deliberately when the format
    // changes — downstream tooling parses this.
    Registry reg;
    Counter c = reg.counter("reqs", {{"device", "A"}, {"volume", "0"}});
    c.inc(12);
    uint64_t served = 99;
    reg.exportCounter("served", {{"device", "A"}}, &served);
    Gauge g = reg.gauge("depth");
    g.set(-3);
    Histogram h = reg.histogram("lat", {100});
    h.observe(50);
    h.observe(500);
    const std::string expected =
        "{\"time_ns\":42,\"metrics\":[\n"
        "{\"name\":\"reqs\",\"labels\":{\"device\":\"A\","
        "\"volume\":\"0\"},\"type\":\"counter\",\"value\":12},\n"
        "{\"name\":\"served\",\"labels\":{\"device\":\"A\"},"
        "\"type\":\"counter\",\"value\":99},\n"
        "{\"name\":\"depth\",\"labels\":{},\"type\":\"gauge\","
        "\"value\":-3},\n"
        "{\"name\":\"lat\",\"labels\":{},\"type\":\"histogram\","
        "\"count\":2,\"sum\":550,"
        "\"p50\":100,\"p95\":100,\"p99\":100,\"p999\":100,\"buckets\":["
        "{\"le\":100,\"count\":1},{\"le\":\"+inf\",\"count\":1}]}\n"
        "]}\n";
    EXPECT_EQ(reg.toJson(sim::SimTime{42}), expected);
}

} // namespace
} // namespace ssdcheck::obs
