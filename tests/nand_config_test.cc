/** @file Unit tests for nand/nand_config.h. */
#include <gtest/gtest.h>

#include "nand/nand_config.h"

namespace ssdcheck::nand {
namespace {

TEST(NandGeometryTest, DerivedCounts)
{
    NandGeometry g;
    g.channels = 4;
    g.chipsPerChannel = 4;
    g.diesPerChip = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 64;
    g.pagesPerBlock = 64;
    EXPECT_EQ(g.chips(), 16u);
    EXPECT_EQ(g.planesPerChip(), 2u);
    EXPECT_EQ(g.totalPlanes(), 32u);
    EXPECT_EQ(g.totalBlocks(), 2048u);
    EXPECT_EQ(g.totalPages(), 131072u);
    EXPECT_TRUE(g.valid());
}

TEST(NandGeometryTest, ZeroDimensionInvalid)
{
    NandGeometry g;
    g.blocksPerPlane = 0;
    EXPECT_FALSE(g.valid());
}

TEST(PpnCodecTest, EncodeDecodeRoundTrip)
{
    NandGeometry g;
    g.channels = 2;
    g.chipsPerChannel = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    for (uint32_t plane = 0; plane < g.totalPlanes(); plane += 3) {
        for (uint32_t block = 0; block < g.blocksPerPlane; block += 2) {
            for (uint32_t page = 0; page < g.pagesPerBlock; page += 5) {
                const PhysicalPageAddress a{plane, block, page};
                const Ppn ppn = encodePpn(g, a);
                const PhysicalPageAddress d = decodePpn(g, ppn);
                EXPECT_EQ(d.plane, plane);
                EXPECT_EQ(d.block, block);
                EXPECT_EQ(d.page, page);
            }
        }
    }
}

TEST(PpnCodecTest, PpnsAreDenseAndUnique)
{
    NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 3;
    g.pagesPerBlock = 4;
    std::vector<bool> seen(g.totalPages(), false);
    for (uint32_t pl = 0; pl < g.totalPlanes(); ++pl) {
        for (uint32_t b = 0; b < g.blocksPerPlane; ++b) {
            for (uint32_t p = 0; p < g.pagesPerBlock; ++p) {
                const Ppn ppn = encodePpn(g, {pl, b, p});
                ASSERT_LT(ppn.value(), g.totalPages());
                EXPECT_FALSE(seen[ppn.value()]);
                seen[ppn.value()] = true;
            }
        }
    }
}

TEST(PpnCodecTest, BlockOfPpnConsistentWithDecode)
{
    NandGeometry g;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 16;
    for (uint64_t raw = 0; raw < g.totalPages(); raw += 7) {
        const Ppn ppn{raw};
        const Pbn blk = blockOfPpn(g, ppn);
        const PhysicalPageAddress a = decodePpn(g, ppn);
        EXPECT_EQ(blk.value(),
                  uint64_t{a.plane} * g.blocksPerPlane + a.block);
    }
}

TEST(NandTimingTest, PaperDefaults)
{
    const NandTiming t;
    EXPECT_EQ(t.readLatency, sim::microseconds(60));
    EXPECT_EQ(t.programLatency, sim::microseconds(1000));
    EXPECT_EQ(t.eraseLatency, sim::microseconds(3500));
    EXPECT_LT(t.slcProgramLatency, t.programLatency);
}

} // namespace
} // namespace ssdcheck::nand
