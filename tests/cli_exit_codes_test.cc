/**
 * @file Consolidated CLI exit-code contract, asserted through the
 * installed `ssdcheck` binary: every failure class maps to one stable
 * code (tools/exit_codes.h), `help` exits 0 and prints the
 * consolidated table verbatim, and bad invocations are distinguishable
 * from crashed runs by code alone.
 *
 * Build wiring provides:
 *   SSDCHECK_CLI_BIN  absolute path of the ssdcheck CLI binary
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exit_codes.h"

namespace {

namespace cli = ssdcheck::cli;

/** Run the real binary; returns its exit code, captures stdout+stderr. */
int
runCli(const std::string &args, std::string *out)
{
    const std::string cmd =
        std::string(SSDCHECK_CLI_BIN) + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (pipe == nullptr)
        return -1;
    char buf[512];
    std::ostringstream os;
    while (fgets(buf, sizeof buf, pipe) != nullptr)
        os << buf;
    if (out != nullptr)
        *out = os.str();
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CliExitCodes, EnumValuesAreTheDocumentedContract)
{
    // The numeric values are API: scripts and CI match on them, so a
    // renumbering is a breaking change this test makes loud.
    EXPECT_EQ(cli::kOk, 0);
    EXPECT_EQ(cli::kUsage, 1);
    EXPECT_EQ(cli::kBadArgs, 2);
    EXPECT_EQ(cli::kRecoveryFloor, 3);
    EXPECT_EQ(cli::kPerfGate, 4);
    EXPECT_EQ(cli::kCorruptSnapshot, 5);
    EXPECT_EQ(cli::kConfigMismatch, 6);
    EXPECT_EQ(cli::kInvariantViolation, 7);
    EXPECT_EQ(cli::kSloViolation, 8);
}

TEST(CliExitCodes, HelpExitsZeroAndPrintsTheExitCodeTable)
{
    for (const char *spelling : {"help", "--help", "-h"}) {
        std::string out;
        EXPECT_EQ(runCli(spelling, &out), cli::kOk) << spelling;
        // The consolidated table is printed verbatim from the shared
        // header, so CLI and docs can never drift apart.
        EXPECT_NE(out.find(cli::kExitCodeTable), std::string::npos)
            << spelling << " output:\n"
            << out;
        EXPECT_NE(out.find("chaos"), std::string::npos) << spelling;
    }
}

TEST(CliExitCodes, UnknownCommandExitsUsage)
{
    std::string out;
    EXPECT_EQ(runCli("frobnicate", &out), cli::kUsage);
    EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(CliExitCodes, BadArgumentsExitBadArgs)
{
    std::string out;
    // Unknown device preset.
    EXPECT_EQ(runCli("run --device NOPE --scale 0.002", &out),
              cli::kBadArgs)
        << out;
    // Unreadable chaos scenario file.
    EXPECT_EQ(runCli("chaos --scenario /nonexistent.chaos", &out),
              cli::kBadArgs)
        << out;
}

TEST(CliExitCodes, MalformedChaosScenarioExitsBadArgs)
{
    const std::string path =
        testing::TempDir() + "/cli_exit_codes_bad.chaos";
    {
        std::ofstream f(path);
        f << "seeds 1\nno-such-key 1\n";
    }
    std::string out;
    EXPECT_EQ(runCli("chaos --scenario " + path, &out), cli::kBadArgs)
        << out;
    EXPECT_NE(out.find("no-such-key"), std::string::npos) << out;
    std::remove(path.c_str());
}

TEST(CliExitCodes, ChaosSloViolationExitsSloViolation)
{
    // An impossible liveness floor forces the SLO-violation path.
    const std::string path =
        testing::TempDir() + "/cli_exit_codes_slo.chaos";
    {
        std::ofstream f(path);
        f << "name impossible\nscale 0.002\nseeds 1\npacing closed\n"
          << "assert-min-completed 18446744073709551615\n";
    }
    std::string out;
    EXPECT_EQ(runCli("chaos --scenario " + path + " --jobs 2", &out),
              cli::kSloViolation)
        << out;
    EXPECT_NE(out.find("liveness"), std::string::npos) << out;
    std::remove(path.c_str());
}

TEST(CliExitCodes, ChaosCampaignPassesAndVerifies)
{
    const std::string path =
        testing::TempDir() + "/cli_exit_codes_ok.chaos";
    {
        std::ofstream f(path);
        f << "name tiny\nscale 0.002\nseeds 1 2\npacing closed\n"
          << "faults storms\nassert-min-completed 100\n";
    }
    std::string out;
    // --verify reruns the campaign at --jobs 1 and requires a
    // bit-identical digest: the determinism gate, end to end.
    EXPECT_EQ(runCli("chaos --scenario " + path + " --jobs 4 --verify",
                     &out),
              cli::kOk)
        << out;
    EXPECT_NE(out.find("campaign digest:"), std::string::npos) << out;
    std::remove(path.c_str());
}

} // namespace
