/** @file Tests for trace text serialization. */
#include <gtest/gtest.h>

#include <sstream>

#include "workload/snia_synth.h"
#include "workload/trace.h"

namespace ssdcheck::workload {
namespace {

using blockdev::IoRequest;
using blockdev::IoType;

TEST(TraceIoTest, RoundTripPreservesEverything)
{
    Trace t("demo trace");
    for (int i = 0; i < 100; ++i) {
        TraceRecord rec;
        rec.arrival = i * 1000;
        rec.req.type = i % 3 == 0   ? IoType::Read
                       : i % 3 == 1 ? IoType::Write
                                    : IoType::Trim;
        rec.req.lba = static_cast<uint64_t>(i) * 8;
        rec.req.sectors = (i % 4 + 1) * 8;
        t.add(rec);
    }
    std::stringstream ss;
    t.saveText(ss);
    const auto back = Trace::loadText(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->name(), "demo trace");
    ASSERT_EQ(back->size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ((*back)[i].arrival, t[i].arrival);
        EXPECT_EQ((*back)[i].req.type, t[i].req.type);
        EXPECT_EQ((*back)[i].req.lba, t[i].req.lba);
        EXPECT_EQ((*back)[i].req.sectors, t[i].req.sectors);
    }
}

TEST(TraceIoTest, RoundTripOfSyntheticTraceKeepsStats)
{
    const Trace t = buildSniaTrace(SniaWorkload::Build, 4096, 0.01);
    std::stringstream ss;
    t.saveText(ss);
    const auto back = Trace::loadText(ss);
    ASSERT_TRUE(back.has_value());
    const auto a = t.characterize();
    const auto b = back->characterize();
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.writeFraction, b.writeFraction);
    EXPECT_DOUBLE_EQ(a.randomFraction, b.randomFraction);
}

TEST(TraceIoTest, EmptyTraceRoundTrips)
{
    Trace t("empty");
    std::stringstream ss;
    t.saveText(ss);
    const auto back = Trace::loadText(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->name(), "empty");
    EXPECT_TRUE(back->empty());
}

TEST(TraceIoTest, MissingHeaderRejected)
{
    std::stringstream ss("0 w 8 8\n");
    EXPECT_FALSE(Trace::loadText(ss).has_value());
}

TEST(TraceIoTest, BadTypeRejected)
{
    std::stringstream ss("# x\n0 q 8 8\n");
    EXPECT_FALSE(Trace::loadText(ss).has_value());
}

TEST(TraceIoTest, MalformedLineRejected)
{
    std::stringstream ss("# x\n0 w eight 8\n");
    EXPECT_FALSE(Trace::loadText(ss).has_value());
}

TEST(TraceIoTest, NonMonotoneArrivalsRejected)
{
    std::stringstream ss("# x\n100 w 8 8\n50 w 16 8\n");
    EXPECT_FALSE(Trace::loadText(ss).has_value());
}

TEST(TraceIoTest, BlankLinesSkipped)
{
    std::stringstream ss("# x\n\n0 w 8 8\n\n10 r 16 8\n");
    const auto back = Trace::loadText(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), 2u);
}

TEST(TraceIoTest, ParseErrorsReportTheOffendingLine)
{
    size_t line = 999;
    std::stringstream empty("");
    EXPECT_FALSE(Trace::loadText(empty, &line).has_value());
    EXPECT_EQ(line, 0u); // nothing to point at

    std::stringstream noHeader("0 w 8 8\n");
    EXPECT_FALSE(Trace::loadText(noHeader, &line).has_value());
    EXPECT_EQ(line, 1u);

    std::stringstream badType("# x\n0 w 8 8\n1 q 8 8\n");
    EXPECT_FALSE(Trace::loadText(badType, &line).has_value());
    EXPECT_EQ(line, 3u);

    std::stringstream garbage("# x\n0 w 8 8\n1 w 16 8\nnot a record\n");
    EXPECT_FALSE(Trace::loadText(garbage, &line).has_value());
    EXPECT_EQ(line, 4u);

    // Blank lines still count toward the reported line number.
    std::stringstream withBlanks("# x\n\n\n100 w 8 8\n50 w 16 8\n");
    EXPECT_FALSE(Trace::loadText(withBlanks, &line).has_value());
    EXPECT_EQ(line, 5u); // the non-monotone arrival

    // A successful parse leaves the caller's value untouched.
    line = 999;
    std::stringstream good("# x\n0 w 8 8\n");
    EXPECT_TRUE(Trace::loadText(good, &line).has_value());
    EXPECT_EQ(line, 999u);
}

} // namespace
} // namespace ssdcheck::workload
