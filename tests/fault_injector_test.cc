/**
 * @file Unit and device-level tests for ssd/fault_injector.h:
 * deterministic draws, profile presets, and the injected behaviors
 * (UNC latency spikes, MediaError completions, block retirement,
 * stalls, firmware drift) as seen through SsdDevice.
 */
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "recovery/state_io.h"
#include "ssd/fault_injector.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/runner.h"
#include "workload/synthetic.h"

namespace ssdcheck::ssd {
namespace {

using blockdev::IoStatus;
using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::microseconds;
using sim::milliseconds;

/** Small deterministic single-bus device (mirrors ssd_device_test). */
SsdConfig
faultTestCfg()
{
    SsdConfig c;
    c.userCapacityPages = 16 * 1024;
    c.volumeBits = {10};
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.opRatio = 0.3;
    c.gcLowBlocks = 3;
    c.gcHighBlocks = 6;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(FaultInjectorTest, InertProfileDrawsNothing)
{
    FaultInjector fi(FaultProfile{}, sim::Rng(1));
    for (int i = 0; i < 1000; ++i) {
        const ReadFault rf = fi.onRead();
        EXPECT_EQ(rf.retries, 0u);
        EXPECT_FALSE(rf.hard);
        EXPECT_FALSE(fi.programFails());
        EXPECT_FALSE(fi.eraseFails());
        EXPECT_EQ(fi.stallFor(), 0);
        EXPECT_FALSE(fi.driftDue(i));
    }
    EXPECT_EQ(fi.counters().readUncTransient, 0u);
    EXPECT_EQ(fi.counters().stalls, 0u);
    EXPECT_TRUE(fi.profile().inert());
}

TEST(FaultInjectorTest, DrawsAreDeterministicPerSeed)
{
    FaultProfile p;
    p.readUncProbability = 0.3;
    p.readUncHardFraction = 0.2;
    p.stallProbability = 0.1;
    FaultInjector a(p, sim::Rng(7));
    FaultInjector b(p, sim::Rng(7));
    for (int i = 0; i < 500; ++i) {
        const ReadFault ra = a.onRead();
        const ReadFault rb = b.onRead();
        EXPECT_EQ(ra.retries, rb.retries);
        EXPECT_EQ(ra.hard, rb.hard);
        EXPECT_EQ(a.stallFor(), b.stallFor());
    }
    EXPECT_EQ(a.counters().readUncTransient, b.counters().readUncTransient);
    EXPECT_EQ(a.counters().readUncHard, b.counters().readUncHard);
}

TEST(FaultInjectorTest, CertainUncAlwaysRetriesWithinBounds)
{
    FaultProfile p;
    p.readUncProbability = 1.0;
    p.readRetryMax = 4;
    FaultInjector fi(p, sim::Rng(3));
    for (int i = 0; i < 200; ++i) {
        const ReadFault rf = fi.onRead();
        EXPECT_GE(rf.retries, 1u);
        EXPECT_LE(rf.retries, 4u);
        EXPECT_FALSE(rf.hard);
    }
    EXPECT_EQ(fi.counters().readUncTransient, 200u);
    EXPECT_EQ(fi.counters().readUncHard, 0u);
}

TEST(FaultInjectorTest, HardFractionExhaustsAllRetries)
{
    FaultProfile p;
    p.readUncProbability = 1.0;
    p.readUncHardFraction = 1.0;
    p.readRetryMax = 4;
    FaultInjector fi(p, sim::Rng(3));
    const ReadFault rf = fi.onRead();
    EXPECT_TRUE(rf.hard);
    EXPECT_EQ(rf.retries, 4u);
    EXPECT_EQ(fi.counters().readUncHard, 1u);
}

TEST(FaultInjectorTest, StallsStayWithinConfiguredRange)
{
    FaultProfile p;
    p.stallProbability = 1.0;
    p.stallMin = milliseconds(50);
    p.stallMax = milliseconds(400);
    FaultInjector fi(p, sim::Rng(9));
    for (int i = 0; i < 100; ++i) {
        const sim::SimDuration d = fi.stallFor();
        EXPECT_GE(d, milliseconds(50));
        EXPECT_LE(d, milliseconds(400));
    }
    EXPECT_EQ(fi.counters().stalls, 100u);
}

TEST(FaultInjectorTest, DriftFiresExactlyOnce)
{
    FaultProfile p;
    p.driftAfterRequests = 100;
    p.driftKind = DriftKind::ShrinkBuffer;
    FaultInjector fi(p, sim::Rng(1));
    EXPECT_FALSE(fi.driftDue(99));
    EXPECT_TRUE(fi.driftDue(100));
    EXPECT_FALSE(fi.driftDue(101)); // one-shot
    EXPECT_EQ(fi.counters().driftEvents, 1u);
}

TEST(FaultInjectorTest, PresetLookup)
{
    FaultProfile p;
    EXPECT_TRUE(faultProfileByName("none", &p));
    EXPECT_TRUE(p.inert());
    EXPECT_TRUE(faultProfileByName("flaky-reads", &p));
    EXPECT_GT(p.readUncProbability, 0.0);
    EXPECT_TRUE(faultProfileByName("hostile", &p));
    EXPECT_FALSE(p.inert());
    EXPECT_FALSE(faultProfileByName("no-such-profile", &p));
    EXPECT_FALSE(allFaultProfiles().empty());
    // Every preset must pass config validation.
    for (const auto &preset : allFaultProfiles()) {
        SsdConfig cfg = faultTestCfg();
        cfg.faults = preset;
        EXPECT_NO_THROW(SsdDevice dev(cfg)) << preset.name;
    }
}

// ---------------------------------------------------------------------
// Device-level injection behavior.
// ---------------------------------------------------------------------

TEST(FaultInjectorDeviceTest, UncReadsSurfaceAsLatencySpikes)
{
    SsdConfig clean = faultTestCfg();
    SsdConfig faulty = faultTestCfg();
    faulty.faults.name = "all-unc";
    faulty.faults.readUncProbability = 1.0;
    faulty.faults.readRetryCost = microseconds(350);

    SsdDevice cdev(clean);
    SsdDevice fdev(faulty);
    cdev.precondition();
    fdev.precondition();

    const auto cres = cdev.submit(makeRead4k(42), sim::kTimeZero);
    const auto fres = fdev.submit(makeRead4k(42), sim::kTimeZero);
    EXPECT_EQ(cres.status, IoStatus::Ok);
    EXPECT_EQ(fres.status, IoStatus::Ok); // transient: recovered in-device
    // The in-device retry loop is visible only as added latency.
    EXPECT_GE(fres.latency(), cres.latency() + microseconds(350));
    EXPECT_GE(fdev.faultCounters().readUncTransient, 1u);
}

TEST(FaultInjectorDeviceTest, HardUncCompletesAsMediaError)
{
    SsdConfig cfg = faultTestCfg();
    cfg.faults.name = "hard-unc";
    cfg.faults.readUncProbability = 1.0;
    cfg.faults.readUncHardFraction = 1.0;
    SsdDevice dev(cfg);
    dev.precondition();
    const auto res = dev.submit(makeRead4k(7), sim::kTimeZero);
    EXPECT_EQ(res.status, IoStatus::MediaError);
    EXPECT_FALSE(res.ok());
    // Even a failed read pays the full retry loop before giving up.
    EXPECT_GE(res.latency(),
              static_cast<sim::SimDuration>(cfg.faults.readRetryMax) *
                  cfg.faults.readRetryCost);
    EXPECT_EQ(dev.faultCounters().readUncHard, 1u);
}

TEST(FaultInjectorDeviceTest, StallsDelayCompletion)
{
    SsdConfig cfg = faultTestCfg();
    cfg.faults.name = "always-stall";
    cfg.faults.stallProbability = 1.0;
    cfg.faults.stallMin = milliseconds(50);
    cfg.faults.stallMax = milliseconds(60);
    SsdDevice dev(cfg);
    dev.precondition();
    const auto res = dev.submit(makeRead4k(1), sim::kTimeZero);
    EXPECT_EQ(res.status, IoStatus::Ok);
    EXPECT_GE(res.latency(), milliseconds(50));
    EXPECT_EQ(dev.faultCounters().stalls, 1u);
}

TEST(FaultInjectorDeviceTest, WearoutRetiresBlocks)
{
    SsdConfig cfg = faultTestCfg();
    cfg.faults.name = "wearout";
    cfg.faults.programFailProbability = 0.05;
    cfg.faults.eraseFailProbability = 0.2;
    SsdDevice dev(cfg);
    dev.precondition();
    const auto trace =
        workload::buildRandomWriteTrace(40000, cfg.userCapacityPages, 5);
    usecases::runClosedLoop(dev, trace, 1, 0, sim::kTimeZero);
    EXPECT_GT(dev.faultCounters().blocksRetired, 0u);
    EXPECT_EQ(dev.totalCounters().retiredBlocks,
              dev.faultCounters().blocksRetired);
    // Data-path integrity survives retirement: pages remain readable.
    uint64_t payload = 0;
    EXPECT_TRUE(dev.peekPage(1, &payload));
}

TEST(FaultInjectorDeviceTest, BufferDriftMutatesDeviceConfig)
{
    SsdConfig cfg = faultTestCfg();
    cfg.faults.name = "drift";
    cfg.faults.driftAfterRequests = 64;
    cfg.faults.driftKind = DriftKind::ShrinkBuffer;
    cfg.faults.driftBufferFactor = 0.5;
    SsdDevice dev(cfg);
    dev.precondition();
    const uint64_t before = dev.config().bufferBytes;
    for (uint64_t i = 0; i < 128; ++i)
        dev.submit(makeWrite4k(i), sim::kTimeZero + milliseconds(i));
    EXPECT_EQ(dev.faultCounters().driftEvents, 1u);
    EXPECT_EQ(dev.config().bufferBytes, before / 2);
}

TEST(FaultInjectorTest, AllPresetProfilesValidate)
{
    for (const auto &p : allFaultProfiles())
        EXPECT_EQ(p.validate(), "") << p.name;
    EXPECT_EQ(FaultProfile{}.validate(), "");
}

TEST(FaultInjectorTest, ValidateRejectsMalformedProfiles)
{
    FaultProfile p;
    p.name = "broken";

    p.readUncProbability = -0.1;
    EXPECT_NE(p.validate().find("readUncProbability"), std::string::npos);
    p.readUncProbability = 1.5;
    EXPECT_NE(p.validate().find("readUncProbability"), std::string::npos);
    p.readUncProbability = 0.5;
    EXPECT_EQ(p.validate(), "");

    p.stallProbability = 2.0;
    EXPECT_NE(p.validate().find("stallProbability"), std::string::npos);
    p.stallProbability = 0.0;

    p.stallMin = milliseconds(100);
    p.stallMax = milliseconds(50);
    EXPECT_NE(p.validate().find("stallMax"), std::string::npos);
    p.stallMax = milliseconds(100);
    EXPECT_EQ(p.validate(), "");

    p.stallMin = -1;
    EXPECT_NE(p.validate().find("stallMin"), std::string::npos);
    p.stallMin = 0;

    p.driftAfterRequests = 100;
    p.driftKind = DriftKind::None;
    EXPECT_NE(p.validate().find("driftKind"), std::string::npos);
    p.driftKind = DriftKind::ShrinkBuffer;
    p.driftBufferFactor = 0.0;
    EXPECT_NE(p.validate().find("driftBufferFactor"), std::string::npos);
    p.driftBufferFactor = 0.5;
    EXPECT_EQ(p.validate(), "");

    // The message names the profile so operators know which config
    // (CLI flag, test fixture) to fix.
    p.eraseFailProbability = -1.0;
    EXPECT_NE(p.validate().find("broken"), std::string::npos);
}

TEST(FaultInjectorDeviceTest, ReadTriggerDriftFlipsFlag)
{
    SsdConfig cfg = faultTestCfg();
    cfg.faults.name = "drift-rt";
    cfg.faults.driftAfterRequests = 10;
    cfg.faults.driftKind = DriftKind::ToggleReadTrigger;
    SsdDevice dev(cfg);
    dev.precondition();
    const bool before = dev.config().readTriggerFlush;
    for (uint64_t i = 0; i < 20; ++i)
        dev.submit(makeWrite4k(i), sim::kTimeZero + milliseconds(i));
    EXPECT_EQ(dev.config().readTriggerFlush, !before);
}


// -- correlated faults: regimes, phases, clusters ---------------------

TEST(FaultInjectorRegimeTest, BeginRequestIsDrawNeutralWithoutRegimes)
{
    // Profiles without regimes must keep their historical random
    // stream layout bit-for-bit: beginRequest draws nothing.
    FaultProfile p;
    p.readUncProbability = 0.3;
    p.stallProbability = 0.1;
    FaultInjector withBegin(p, sim::Rng(7));
    FaultInjector without(p, sim::Rng(7));
    for (uint64_t i = 1; i <= 300; ++i) {
        withBegin.beginRequest(i);
        const ReadFault ra = withBegin.onRead();
        const ReadFault rb = without.onRead();
        EXPECT_EQ(ra.retries, rb.retries);
        EXPECT_EQ(ra.hard, rb.hard);
        EXPECT_EQ(withBegin.stallFor(), without.stallFor());
    }
    EXPECT_EQ(withBegin.rng().draws(), without.rng().draws());
    EXPECT_EQ(withBegin.counters().burstEntries, 0u);
    EXPECT_EQ(withBegin.counters().burstRequests, 0u);
}

TEST(FaultInjectorRegimeTest, BurstMultipliesRatesWhileActive)
{
    // A certain, permanent burst that multiplies a 0.5 base rate into
    // a certainty: every read inside the burst is UNC.
    FaultProfile p;
    p.readUncProbability = 0.5;
    p.regime.enterBurst = 1.0;
    p.regime.exitBurst = 1e-12; // Effectively never leaves.
    p.regime.uncFactor = 2.0;
    ASSERT_EQ(p.validate(), "");
    FaultInjector fi(p, sim::Rng(5));
    EXPECT_FALSE(fi.bursting());
    for (uint64_t i = 1; i <= 50; ++i) {
        fi.beginRequest(i);
        EXPECT_TRUE(fi.bursting());
        const ReadFault rf = fi.onRead();
        EXPECT_GE(rf.retries, 1u) << "request " << i;
    }
    EXPECT_EQ(fi.counters().burstEntries, 1u);
    EXPECT_EQ(fi.counters().burstRequests, 50u);
    EXPECT_EQ(fi.counters().readUncTransient, 50u);
}

TEST(FaultInjectorRegimeTest, StallFactorMultipliesStallRateInBurst)
{
    FaultProfile p;
    p.stallProbability = 0.5;
    p.stallMin = milliseconds(1);
    p.stallMax = milliseconds(2);
    p.regime.enterBurst = 1.0;
    p.regime.exitBurst = 1e-12;
    p.regime.stallFactor = 2.0; // 0.5 * 2 = certain stall.
    FaultInjector fi(p, sim::Rng(11));
    for (uint64_t i = 1; i <= 20; ++i) {
        fi.beginRequest(i);
        EXPECT_GT(fi.stallFor(), 0) << "request " << i;
    }
    EXPECT_EQ(fi.counters().stalls, 20u);
}

TEST(FaultInjectorRegimeTest, PhaseWindowsScheduleStorms)
{
    // Calm [1,10), storm [10,20), calm again from 20: the phase's
    // certain-burst regime governs only its window, and leaving the
    // window ends any burst in progress.
    FaultProfile p;
    p.readUncProbability = 0.5;
    FaultPhase storm;
    storm.fromRequest = 10;
    storm.toRequest = 20;
    storm.regime.enterBurst = 1.0;
    storm.regime.exitBurst = 1e-12;
    storm.regime.uncFactor = 2.0;
    p.phases.push_back(storm);
    ASSERT_EQ(p.validate(), "");
    FaultInjector fi(p, sim::Rng(13));
    for (uint64_t i = 1; i <= 30; ++i) {
        fi.beginRequest(i);
        const bool inStorm = i >= 10 && i < 20;
        EXPECT_EQ(fi.bursting(), inStorm) << "request " << i;
        const ReadFault rf = fi.onRead();
        if (inStorm) {
            EXPECT_GE(rf.retries, 1u) << "request " << i;
        }
    }
    EXPECT_EQ(fi.counters().burstRequests, 10u);
}

TEST(FaultInjectorClusterTest, ClusterTargetsItsPageRangeOnly)
{
    // No global UNC rate; a scratched region [100, 110) fails every
    // read that lands inside it.
    FaultProfile p;
    UncCluster c;
    c.firstPage = 100;
    c.pages = 10;
    c.probability = 1.0;
    p.uncClusters.push_back(c);
    ASSERT_EQ(p.validate(), "");
    EXPECT_FALSE(p.inert());
    FaultInjector fi(p, sim::Rng(17));
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(fi.onRead(5).retries, 0u);      // Outside.
        EXPECT_GE(fi.onRead(105).retries, 1u);    // Inside.
        EXPECT_EQ(fi.onRead(110).retries, 0u);    // One past the end.
    }
    EXPECT_EQ(fi.counters().clusterUncReads, 50u);
    EXPECT_EQ(fi.counters().readUncTransient, 50u);
}

TEST(FaultInjectorRegimeTest, ValidateRejectsMalformedCorrelatedFaults)
{
    FaultProfile p;
    p.name = "broken";
    p.regime.enterBurst = 0.5;
    p.regime.exitBurst = 0.0; // Active regime must be able to exit.
    EXPECT_NE(p.validate().find("transition"), std::string::npos);
    p.regime.exitBurst = 0.1;
    p.regime.uncFactor = -1.0;
    EXPECT_NE(p.validate().find("factors"), std::string::npos);
    p.regime.uncFactor = 1.0;
    EXPECT_EQ(p.validate(), "");

    FaultPhase ph;
    ph.fromRequest = 10;
    ph.toRequest = 10; // Empty window.
    p.phases.push_back(ph);
    EXPECT_NE(p.validate().find("phase window"), std::string::npos);
    p.phases.clear();

    UncCluster c;
    c.pages = 0;
    p.uncClusters.push_back(c);
    EXPECT_NE(p.validate().find("uncCluster"), std::string::npos);
    p.uncClusters[0].pages = 4;
    p.uncClusters[0].probability = 2.0;
    EXPECT_NE(p.validate().find("probability"), std::string::npos);
    p.uncClusters[0].probability = 0.5;
    EXPECT_EQ(p.validate(), "");
}

TEST(FaultInjectorRegimeTest, StormsPresetValidatesAndBursts)
{
    FaultProfile p;
    ASSERT_TRUE(faultProfileByName("storms", &p));
    EXPECT_TRUE(p.regime.active());
    EXPECT_FALSE(p.inert());
    // Long enough runs must actually enter bursts.
    FaultInjector fi(p, sim::Rng(21));
    for (uint64_t i = 1; i <= 20000; ++i) {
        fi.beginRequest(i);
        fi.onRead(i % 4096);
    }
    EXPECT_GT(fi.counters().burstEntries, 0u);
    EXPECT_GT(fi.counters().burstRequests,
              fi.counters().burstEntries); // Bursts dwell.
}

// -- snapshot/restore replay equivalence (recovery subsystem) ---------

TEST(FaultInjectorSnapshotTest, RestoreResumesIdenticalDrawStream)
{
    FaultProfile prof;
    prof.name = "snap";
    prof.readUncProbability = 0.1;
    prof.readUncHardFraction = 0.2;
    prof.programFailProbability = 0.05;
    prof.eraseFailProbability = 0.05;
    prof.stallProbability = 0.02;
    prof.driftAfterRequests = 500;
    prof.driftKind = DriftKind::ShrinkBuffer;

    FaultInjector a(prof, sim::Rng(77));
    // Advance through a mixed draw pattern, including the drift point.
    for (uint64_t i = 0; i < 300; ++i) {
        a.onRead();
        a.programFails();
        a.eraseFails();
        a.stallFor();
        if (a.driftDue(i * 2))
            a.noteBlockRetired();
    }

    recovery::StateWriter w;
    a.saveState(w);

    // Restore into a fresh injector built from the SAME profile (the
    // profile is config, enforced by the snapshot's config hash) but a
    // different stream position.
    FaultInjector b(prof, sim::Rng(1));
    b.onRead();
    recovery::StateReader r(w.bytes().data(), w.bytes().size());
    ASSERT_TRUE(b.loadState(r));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(b.driftFired(), a.driftFired());
    EXPECT_EQ(b.counters().readUncTransient, a.counters().readUncTransient);
    EXPECT_EQ(b.counters().readUncHard, a.counters().readUncHard);
    EXPECT_EQ(b.counters().programFailures, a.counters().programFailures);
    EXPECT_EQ(b.counters().eraseFailures, a.counters().eraseFailures);
    EXPECT_EQ(b.counters().blocksRetired, a.counters().blocksRetired);
    EXPECT_EQ(b.counters().stalls, a.counters().stalls);
    EXPECT_EQ(b.rng().draws(), a.rng().draws());

    // The continued streams must be draw-for-draw identical.
    for (uint64_t i = 0; i < 500; ++i) {
        const ReadFault fa = a.onRead();
        const ReadFault fb = b.onRead();
        EXPECT_EQ(fa.retries, fb.retries);
        EXPECT_EQ(fa.hard, fb.hard);
        EXPECT_EQ(a.programFails(), b.programFails());
        EXPECT_EQ(a.eraseFails(), b.eraseFails());
        EXPECT_EQ(a.stallFor(), b.stallFor());
    }
    EXPECT_EQ(b.counters().stalls, a.counters().stalls);
}

TEST(FaultInjectorSnapshotTest, RestorePreservesBurstStateMidStorm)
{
    FaultProfile prof;
    prof.name = "snap-burst";
    prof.readUncProbability = 0.05;
    prof.regime.enterBurst = 0.05;
    prof.regime.exitBurst = 0.02;
    prof.regime.uncFactor = 10.0;

    FaultInjector a(prof, sim::Rng(31));
    uint64_t idx = 1;
    // Advance until a burst is in progress, so the snapshot captures
    // the mid-storm Markov state, not just the calm default.
    while (!a.bursting()) {
        ASSERT_LT(idx, 10000u) << "seed never entered a burst";
        a.beginRequest(idx);
        a.onRead(idx % 1024);
        ++idx;
    }

    recovery::StateWriter w;
    a.saveState(w);
    FaultInjector b(prof, sim::Rng(1));
    recovery::StateReader r(w.bytes().data(), w.bytes().size());
    ASSERT_TRUE(b.loadState(r));
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(b.bursting());
    EXPECT_EQ(b.counters().burstEntries, a.counters().burstEntries);
    EXPECT_EQ(b.counters().burstRequests, a.counters().burstRequests);

    // The continued regime evolution is transition-for-transition
    // identical, including burst exits and re-entries.
    for (uint64_t i = 0; i < 2000; ++i, ++idx) {
        a.beginRequest(idx);
        b.beginRequest(idx);
        EXPECT_EQ(a.bursting(), b.bursting()) << "request " << idx;
        const ReadFault fa = a.onRead(idx % 1024);
        const ReadFault fb = b.onRead(idx % 1024);
        EXPECT_EQ(fa.retries, fb.retries);
        EXPECT_EQ(fa.hard, fb.hard);
    }
    EXPECT_EQ(b.counters().burstEntries, a.counters().burstEntries);
}

TEST(FaultInjectorSnapshotTest, LoadStateFailsOnTruncatedBytes)
{
    FaultProfile prof;
    prof.name = "snap";
    prof.readUncProbability = 0.1;
    FaultInjector a(prof, sim::Rng(3));
    for (int i = 0; i < 10; ++i)
        a.onRead();
    recovery::StateWriter w;
    a.saveState(w);
    FaultInjector b(prof, sim::Rng(3));
    recovery::StateReader r(w.bytes().data(), w.size() / 2);
    EXPECT_FALSE(b.loadState(r));
}

} // namespace
} // namespace ssdcheck::ssd
