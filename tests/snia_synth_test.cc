/** @file Tests that SNIA-synthetic traces match Table II. */
#include <gtest/gtest.h>

#include <cmath>

#include "workload/snia_synth.h"

namespace ssdcheck::workload {
namespace {

TEST(SniaSynthTest, GroupsPartitionTheRealTraces)
{
    const auto wi = writeIntensiveWorkloads();
    const auto ri = readIntensiveWorkloads();
    EXPECT_EQ(wi.size(), 3u);
    EXPECT_EQ(ri.size(), 3u);
    for (const auto w : wi)
        EXPECT_GT(paperStats(w).writeFraction, 0.5);
    for (const auto w : ri)
        EXPECT_LT(paperStats(w).writeFraction, 0.6);
}

TEST(SniaSynthTest, PaperStatsTableII)
{
    EXPECT_EQ(paperStats(SniaWorkload::TPCE).requests, 1300000u);
    EXPECT_NEAR(paperStats(SniaWorkload::TPCE).writeFraction, 0.924, 1e-9);
    EXPECT_NEAR(paperStats(SniaWorkload::Web).randomFraction, 0.148, 1e-9);
    EXPECT_EQ(paperStats(SniaWorkload::Exch).requests, 7600000u);
    EXPECT_NEAR(paperStats(SniaWorkload::Build).writeFraction, 0.539, 1e-9);
}

TEST(SniaSynthTest, ScaleShrinksRequestCount)
{
    const Trace t = buildSniaTrace(SniaWorkload::Build, 4096, 0.01);
    EXPECT_EQ(t.size(), 6000u);
}

/** Parameterized: every workload's synthetic stats track Table II. */
class SniaStatsSweep : public ::testing::TestWithParam<SniaWorkload>
{
};

TEST_P(SniaStatsSweep, MatchesPublishedCharacteristics)
{
    const SniaWorkload w = GetParam();
    const SniaPaperStats ps = paperStats(w);
    const Trace t = buildSniaTrace(w, 64 * 1024, 0.02);
    const TraceStats s = t.characterize();
    EXPECT_NEAR(s.writeFraction, ps.writeFraction, 0.03) << toString(w);
    EXPECT_NEAR(s.randomFraction, ps.randomFraction, 0.06) << toString(w);
    EXPECT_EQ(s.requests,
              static_cast<uint64_t>(
                  std::llround(static_cast<double>(ps.requests) * 0.02)));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SniaStatsSweep,
                         ::testing::ValuesIn(allSniaWorkloads()),
                         [](const auto &info) {
                             std::string n = toString(info.param);
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SniaSynthTest, NamesMatchPaperAbbreviations)
{
    EXPECT_EQ(toString(SniaWorkload::TPCE), "TPCE");
    EXPECT_EQ(toString(SniaWorkload::Exch), "Exch");
    EXPECT_EQ(toString(SniaWorkload::Live), "Live");
    EXPECT_EQ(toString(SniaWorkload::RwMixed), "RW Mixed");
}

} // namespace
} // namespace ssdcheck::workload
