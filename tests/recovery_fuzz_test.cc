/**
 * @file
 * Corruption fuzzing for the snapshot container: truncation at every
 * header byte and every section boundary, deterministic random bit
 * flips, CRC-consistent payload corruption and pure garbage must all
 * surface as typed LoadErrors — never a crash, never a silent partial
 * load. Runs under ASan/UBSan in the chaos-soak CI job.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "recovery/run_state.h"
#include "recovery/snapshot.h"
#include "sim/rng.h"

namespace ssdcheck::recovery {
namespace {

RunParams
fuzzParams()
{
    RunParams p;
    p.device = "A";
    p.faults = "hostile";
    p.workload = "RW Mixed";
    p.scale = 0.002;
    p.supervisor = true;
    return p;
}

/** One real snapshot a few steps into a fault-heavy supervised run. */
const std::vector<uint8_t> &
realSnapshotBytes()
{
    static const std::vector<uint8_t> bytes = [] {
        std::string err;
        auto run = CheckpointableRun::create(fuzzParams(), false, &err);
        EXPECT_NE(run, nullptr) << err;
        if (!run)
            return std::vector<uint8_t>{};
        for (int i = 0; i < 64; ++i)
            run->step();
        return run->checkpoint().serialize();
    }();
    return bytes;
}

/** Byte offsets of every section-record edge in the raw layout. */
std::vector<size_t>
sectionBoundaries(const std::vector<uint8_t> &bytes)
{
    std::vector<size_t> edges;
    size_t pos = kHeaderSize;
    while (pos + 16 <= bytes.size()) {
        uint64_t payloadSize = 0;
        std::memcpy(&payloadSize, bytes.data() + pos + 4, 8);
        edges.push_back(pos);          // start of section record
        edges.push_back(pos + 4);      // after id
        edges.push_back(pos + 12);     // after size
        edges.push_back(pos + 16);     // after crc / start of payload
        if (payloadSize > bytes.size() - pos)
            break; // corrupt already; stop walking
        pos += 16 + payloadSize;
        edges.push_back(pos - 1); // last payload byte
        edges.push_back(pos);     // end of section
    }
    return edges;
}

/**
 * The fuzz oracle: a candidate byte buffer must either fail parse with
 * a typed error, or parse and then fail (or cleanly succeed) restore
 * into a fresh resume stack. Anything but a crash.
 */
void
expectHandledCleanly(const std::vector<uint8_t> &candidate,
                     const char *what)
{
    Snapshot snap;
    std::string detail;
    const LoadError pe = snap.parse(candidate, &detail);
    if (pe != LoadError::Ok) {
        EXPECT_FALSE(toString(pe).empty()) << what;
        return;
    }
    std::string err;
    auto run = CheckpointableRun::create(fuzzParams(), true, &err);
    ASSERT_NE(run, nullptr) << err;
    const LoadError re = run->restore(snap, &detail);
    EXPECT_FALSE(toString(re).empty()) << what;
}

TEST(RecoveryFuzzTest, EveryHeaderTruncationIsTyped)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    ASSERT_GT(bytes.size(), kHeaderSize);
    for (size_t cut = 0; cut < kHeaderSize; ++cut) {
        std::vector<uint8_t> t(bytes.begin(), bytes.begin() + cut);
        Snapshot snap;
        std::string detail;
        EXPECT_EQ(snap.parse(t, &detail), LoadError::TooShort)
            << "cut at " << cut;
    }
}

TEST(RecoveryFuzzTest, EverySectionBoundaryTruncationIsHandled)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    for (const size_t cut : sectionBoundaries(bytes)) {
        if (cut >= bytes.size())
            continue; // full file is the valid case
        std::vector<uint8_t> t(bytes.begin(), bytes.begin() + cut);
        // A cut exactly at a section end parses as a shorter valid
        // container; restore must then report the missing section.
        // Any other cut is a typed parse failure. Either way: handled.
        expectHandledCleanly(
            t, ("truncation at " + std::to_string(cut)).c_str());
        Snapshot snap;
        if (cut != kHeaderSize &&
            snap.parse(t) == LoadError::Ok) {
            std::string err, detail;
            auto run =
                CheckpointableRun::create(fuzzParams(), true, &err);
            ASSERT_NE(run, nullptr) << err;
            // RunParams is diagnostics-only, so a cut that drops only
            // the trailing RunParams section still restores cleanly;
            // any cut that loses a state section must be refused.
            const bool stateIntact =
                snap.section(SectionId::Registry) != nullptr;
            EXPECT_EQ(run->restore(snap, &detail),
                      stateIntact ? LoadError::Ok
                                  : LoadError::MissingSection)
                << "cut at " << cut;
        }
    }
}

TEST(RecoveryFuzzTest, RandomBitFlipsNeverCrashOrLoadSilently)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    sim::Rng rng(0x5eed);
    for (int trial = 0; trial < 128; ++trial) {
        std::vector<uint8_t> mutated = bytes;
        const size_t byteIdx = rng.nextBelow(mutated.size());
        const uint8_t bit = 1u << rng.nextBelow(8);
        mutated[byteIdx] ^= bit;

        Snapshot snap;
        std::string detail;
        const LoadError pe = snap.parse(mutated, &detail);
        if (pe != LoadError::Ok)
            continue; // typed rejection — the common outcome
        // Flips in the (unchecksummed) section table can still parse;
        // restore must then fail — the payload the run needs is gone.
        std::string err;
        auto run = CheckpointableRun::create(fuzzParams(), true, &err);
        ASSERT_NE(run, nullptr) << err;
        EXPECT_NE(run->restore(snap, &detail), LoadError::Ok)
            << "bit flip at byte " << byteIdx << " loaded silently";
    }
}

TEST(RecoveryFuzzTest, CrcConsistentPayloadCorruptionIsMalformed)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    Snapshot original;
    ASSERT_EQ(original.parse(bytes), LoadError::Ok);

    // Rebuild the container with one section's payload corrupted but
    // its CRC recomputed — the container layer passes, so the typed
    // failure must come from section-level semantic validation.
    const SectionId targets[] = {SectionId::Device, SectionId::Model,
                                 SectionId::Supervisor,
                                 SectionId::Registry};
    sim::Rng rng(0xc0ffee);
    for (const SectionId target : targets) {
        for (int variant = 0; variant < 8; ++variant) {
            Snapshot rebuilt;
            rebuilt.begin(original.configHash(),
                          original.requestIndex(),
                          original.simTimeNs());
            for (uint32_t id = 1; id <= 7; ++id) {
                const auto *payload =
                    original.section(static_cast<SectionId>(id));
                if (payload == nullptr)
                    continue;
                std::vector<uint8_t> p = *payload;
                if (static_cast<SectionId>(id) == target) {
                    if (variant == 0) {
                        // Allocation bomb: giant count up front.
                        const uint32_t bomb = 0xfffffff0u;
                        std::memcpy(p.data(), &bomb,
                                    std::min<size_t>(4, p.size()));
                    } else if (variant == 1) {
                        p.resize(p.size() / 2); // semantic truncation
                    } else if (variant == 2) {
                        p.push_back(0); // trailing garbage
                    } else {
                        const size_t at = rng.nextBelow(p.size());
                        p[at] ^= 1u << rng.nextBelow(8);
                    }
                }
                rebuilt.addSection(static_cast<SectionId>(id),
                                   std::move(p));
            }
            expectHandledCleanly(
                rebuilt.serialize(),
                ("crc-consistent corruption of section " +
                 std::to_string(static_cast<uint32_t>(target)) +
                 " variant " + std::to_string(variant))
                    .c_str());
        }
    }
}

TEST(RecoveryFuzzTest, GarbageInputIsTyped)
{
    sim::Rng rng(42);
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<uint8_t> garbage(rng.nextBelow(4096));
        for (auto &b : garbage)
            b = static_cast<uint8_t>(rng.nextBelow(256));
        Snapshot snap;
        std::string detail;
        const LoadError e = snap.parse(garbage, &detail);
        EXPECT_NE(e, LoadError::Ok);
        EXPECT_FALSE(toString(e).empty());
    }
    // Empty input and header-only input.
    Snapshot snap;
    EXPECT_EQ(snap.parse({}), LoadError::TooShort);
}

TEST(RecoveryFuzzTest, VersionAndMagicAreEnforced)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    {
        std::vector<uint8_t> m = bytes;
        m[0] ^= 0xff;
        Snapshot snap;
        EXPECT_EQ(snap.parse(m), LoadError::BadMagic);
    }
    {
        // Bump the version *and* fix the header CRC so the version
        // check itself is what fires.
        std::vector<uint8_t> m = bytes;
        const uint32_t v = kFormatVersion + 1;
        std::memcpy(m.data() + 8, &v, 4);
        const uint32_t crc = crc32(m.data(), 36);
        std::memcpy(m.data() + 36, &crc, 4);
        Snapshot snap;
        EXPECT_EQ(snap.parse(m), LoadError::BadVersion);
    }
    {
        std::vector<uint8_t> m = bytes;
        m[20] ^= 0x01; // request index — covered by the header CRC
        Snapshot snap;
        EXPECT_EQ(snap.parse(m), LoadError::BadHeaderCrc);
    }
}

TEST(RecoveryFuzzTest, DuplicateSectionIsRejected)
{
    const std::vector<uint8_t> &bytes = realSnapshotBytes();
    // Append a byte-for-byte copy of the first section record.
    const std::vector<size_t> edges = sectionBoundaries(bytes);
    ASSERT_GE(edges.size(), 6u);
    const size_t firstStart = edges[0];
    const size_t firstEnd = edges[5];
    std::vector<uint8_t> m = bytes;
    m.insert(m.end(), bytes.begin() + firstStart,
             bytes.begin() + firstEnd);
    Snapshot snap;
    EXPECT_EQ(snap.parse(m), LoadError::DuplicateSection);
}

} // namespace
} // namespace ssdcheck::recovery
