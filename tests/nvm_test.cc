/** @file Unit tests for nvm/nvm_device.h. */
#include <gtest/gtest.h>

#include "blockdev/request.h"
#include "nvm/nvm_device.h"

namespace ssdcheck::nvm {
namespace {

using blockdev::makeRead4k;
using blockdev::makeWrite4k;

NvmConfig
smallCfg()
{
    NvmConfig c;
    c.capacityPages = 8;
    c.jitterSigma = 0.0;
    return c;
}

TEST(NvmDeviceTest, WritesAreMicrosecondScale)
{
    NvmDevice nvm(smallCfg());
    const auto res = nvm.submit(makeWrite4k(1), sim::kTimeZero);
    EXPECT_LE(res.latency(), sim::microseconds(10));
}

TEST(NvmDeviceTest, DirtyTrackingAndHolds)
{
    NvmDevice nvm(smallCfg());
    EXPECT_FALSE(nvm.holds(5));
    nvm.submit(makeWrite4k(5), sim::kTimeZero);
    EXPECT_TRUE(nvm.holds(5));
    EXPECT_EQ(nvm.dirtyPages(), 1u);
    EXPECT_EQ(nvm.freePages(), 7u);
}

TEST(NvmDeviceTest, RewriteSamePageUsesOneSlot)
{
    NvmDevice nvm(smallCfg());
    nvm.submit(makeWrite4k(5), sim::kTimeZero);
    nvm.submit(makeWrite4k(5), sim::kTimeZero + sim::microseconds(10));
    EXPECT_EQ(nvm.dirtyPages(), 1u);
    EXPECT_EQ(nvm.totalWritesAbsorbed(), 2u);
}

TEST(NvmDeviceTest, FullWhenCapacityReached)
{
    NvmDevice nvm(smallCfg());
    for (uint64_t p = 0; p < 8; ++p)
        nvm.submit(makeWrite4k(p), sim::kTimeZero + sim::microseconds(p));
    EXPECT_TRUE(nvm.full());
    EXPECT_EQ(nvm.freePages(), 0u);
}

TEST(NvmDeviceTest, TakeDirtyDrainsFifoOrder)
{
    NvmDevice nvm(smallCfg());
    for (uint64_t p : {3, 1, 7})
        nvm.submit(makeWrite4k(p), sim::kTimeZero);
    const auto first = nvm.takeDirty(2);
    EXPECT_EQ(first, (std::vector<uint64_t>{3, 1}));
    EXPECT_EQ(nvm.dirtyPages(), 1u);
    EXPECT_FALSE(nvm.holds(3));
    EXPECT_TRUE(nvm.holds(7));
    const auto rest = nvm.takeDirty(10);
    EXPECT_EQ(rest, (std::vector<uint64_t>{7}));
    EXPECT_EQ(nvm.dirtyPages(), 0u);
}

TEST(NvmDeviceTest, SecondChanceKeepsRewrittenPagesResident)
{
    NvmDevice nvm(smallCfg());
    nvm.submit(makeWrite4k(2), sim::kTimeZero);
    nvm.submit(makeWrite4k(2), sim::SimTime{1000}); // rewritten since enqueue
    // First pass: the page earns a second chance, nothing drains.
    EXPECT_TRUE(nvm.takeDirty(10).empty());
    EXPECT_TRUE(nvm.holds(2));
    // Untouched since: the next pass drains it.
    EXPECT_EQ(nvm.takeDirty(10), (std::vector<uint64_t>{2}));
    EXPECT_FALSE(nvm.holds(2));
}

TEST(NvmDeviceTest, InvalidateDropsDirtyCopy)
{
    NvmDevice nvm(smallCfg());
    nvm.submit(makeWrite4k(3), sim::kTimeZero);
    nvm.invalidate(3);
    EXPECT_FALSE(nvm.holds(3));
    EXPECT_TRUE(nvm.takeDirty(10).empty()); // stale entry skipped
    nvm.invalidate(99); // no-op on unheld page
}

TEST(NvmDeviceTest, ReadsAreFast)
{
    NvmDevice nvm(smallCfg());
    nvm.submit(makeWrite4k(1), sim::kTimeZero);
    const auto res = nvm.submit(makeRead4k(1), sim::kTimeZero + sim::microseconds(10));
    EXPECT_LE(res.latency(), sim::microseconds(5));
}

TEST(NvmDeviceTest, PurgeEmptiesPool)
{
    NvmDevice nvm(smallCfg());
    nvm.submit(makeWrite4k(1), sim::kTimeZero);
    nvm.purge(sim::kTimeZero + sim::microseconds(5));
    EXPECT_EQ(nvm.dirtyPages(), 0u);
    EXPECT_FALSE(nvm.holds(1));
    EXPECT_TRUE(nvm.takeDirty(10).empty());
}

TEST(NvmDeviceTest, PressureCounterMonotone)
{
    NvmDevice nvm(smallCfg());
    for (int i = 0; i < 5; ++i)
        nvm.submit(makeWrite4k(i), sim::kTimeZero + sim::microseconds(i));
    EXPECT_EQ(nvm.totalWritesAbsorbed(), 5u);
    nvm.takeDirty(5);
    EXPECT_EQ(nvm.totalWritesAbsorbed(), 5u); // drains don't count
}

TEST(NvmDeviceValidationTest, WriteToFullPoolRejectedAsFault)
{
    NvmDevice nvm(smallCfg());
    for (uint64_t p = 0; p < 8; ++p)
        nvm.submit(makeWrite4k(p), sim::kTimeZero + sim::microseconds(p));
    // A caller that ignored backpressure gets a rejected command, not
    // silent data loss.
    const auto res = nvm.submit(makeWrite4k(99), sim::kTimeZero + sim::microseconds(99));
    EXPECT_EQ(res.status, blockdev::IoStatus::DeviceFault);
    EXPECT_FALSE(nvm.holds(99));
    // Rewriting an already-dirty page needs no free slot and stays Ok.
    EXPECT_TRUE(nvm.submit(makeWrite4k(3), sim::kTimeZero + sim::microseconds(100)).ok());
}

TEST(NvmDeviceValidationTest, ZeroSectorRequestRejected)
{
    NvmDevice nvm(smallCfg());
    blockdev::IoRequest req = makeRead4k(0);
    req.sectors = 0;
    const auto res = nvm.submit(req, sim::kTimeZero);
    EXPECT_EQ(res.status, blockdev::IoStatus::DeviceFault);
    EXPECT_GT(res.completeTime, res.submitTime);
}

} // namespace
} // namespace ssdcheck::nvm
