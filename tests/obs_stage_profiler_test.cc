/**
 * @file
 * Unit tests of the per-stage cost profiler: self-time attribution
 * under nesting (a GC scope inside a flush bills to gc, not wb), the
 * RAII StageScope bracket, the ns/request denominator, and the
 * exported registry views.
 *
 * Time comes from a fake monotonic counter, so every expectation is
 * exact — the profiler itself never names a clock (lint R1).
 */
#include <cstdint>

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "obs/stage_profiler.h"

namespace ssdcheck::obs {
namespace {

uint64_t g_now = 0;

uint64_t
fakeNow()
{
    return g_now;
}

TEST(StageProfiler, SelfTimeNotInclusiveUnderNesting)
{
    g_now = 0;
    StageProfiler prof(&fakeNow);

    prof.enter(Stage::Wb); // t=0
    g_now = 100;
    prof.enter(Stage::Gc); // bills 100 to wb
    g_now = 130;
    prof.exit(); // bills 30 to gc
    g_now = 150;
    prof.exit(); // bills the 20ns tail to wb

    EXPECT_EQ(prof.selfNs(Stage::Wb), 120u);
    EXPECT_EQ(prof.selfNs(Stage::Gc), 30u);
    EXPECT_EQ(prof.totalNs(), 150u);
    EXPECT_EQ(prof.calls(Stage::Wb), 1u);
    EXPECT_EQ(prof.calls(Stage::Gc), 1u);
    EXPECT_EQ(prof.calls(Stage::Nand), 0u);
}

TEST(StageProfiler, NsPerRequestDenominator)
{
    g_now = 0;
    StageProfiler prof(&fakeNow);
    EXPECT_EQ(prof.nsPerRequest(Stage::Model), 0u); // no requests yet

    prof.enter(Stage::Model);
    g_now = 90;
    prof.exit();
    prof.addRequest();
    prof.addRequest();
    prof.addRequest();
    EXPECT_EQ(prof.requests(), 3u);
    EXPECT_EQ(prof.nsPerRequest(Stage::Model), 30u);
}

TEST(StageProfiler, UnbalancedExitIsANoop)
{
    g_now = 7;
    StageProfiler prof(&fakeNow);
    prof.exit(); // nothing open
    EXPECT_EQ(prof.totalNs(), 0u);
}

TEST(StageProfiler, StageScopeBracketsAndNullIsNoop)
{
    g_now = 0;
    StageProfiler prof(&fakeNow);
    {
        const StageScope outer(&prof, Stage::Nand);
        g_now = 40;
        {
            const StageScope inner(&prof, Stage::Trace);
            g_now = 55;
        }
        g_now = 60;
    }
    EXPECT_EQ(prof.selfNs(Stage::Nand), 45u);
    EXPECT_EQ(prof.selfNs(Stage::Trace), 15u);

    // A null profiler makes the scope zero-cost — the hot path takes
    // this branch whenever no profiler is attached.
    const StageScope nothing(nullptr, Stage::Wb);
    EXPECT_EQ(prof.selfNs(Stage::Wb), 0u);
}

TEST(StageProfiler, StageNamesAreStable)
{
    EXPECT_STREQ(stageName(Stage::Wb), "wb");
    EXPECT_STREQ(stageName(Stage::Gc), "gc");
    EXPECT_STREQ(stageName(Stage::Nand), "nand");
    EXPECT_STREQ(stageName(Stage::Model), "model");
    EXPECT_STREQ(stageName(Stage::Trace), "trace");
    EXPECT_STREQ(stageName(Stage::Policy), "policy");
}

TEST(StageProfiler, ExportToSurfacesViewsPerStage)
{
    g_now = 0;
    StageProfiler prof(&fakeNow);
    prof.enter(Stage::Policy);
    g_now = 25;
    prof.exit();
    prof.addRequest();

    Registry reg;
    prof.exportTo(reg);
    EXPECT_EQ(reg.value("stage_self_ns", {{"stage", "policy"}}), 25);
    EXPECT_EQ(reg.value("stage_self_ns", {{"stage", "wb"}}), 0);
    EXPECT_EQ(reg.value("stage_calls", {{"stage", "policy"}}), 1);
    EXPECT_EQ(reg.value("stage_requests"), 1);

    // Views read live profiler state: later work shows up with no
    // re-export.
    prof.enter(Stage::Policy);
    g_now = 35;
    prof.exit();
    EXPECT_EQ(reg.value("stage_self_ns", {{"stage", "policy"}}), 35);
    EXPECT_EQ(reg.value("stage_calls", {{"stage", "policy"}}), 2);
}

} // namespace
} // namespace ssdcheck::obs
