/** @file Unit tests for core/latency_monitor.h. */
#include <gtest/gtest.h>

#include "core/latency_monitor.h"

namespace ssdcheck::core {
namespace {

using blockdev::IoRequest;
using blockdev::IoType;
using sim::microseconds;
using sim::milliseconds;

IoRequest
rd()
{
    IoRequest r;
    r.type = IoType::Read;
    return r;
}

IoRequest
wr()
{
    IoRequest r;
    r.type = IoType::Write;
    return r;
}

TEST(LatencyMonitorTest, ClassifiesAgainstPerTypeThresholds)
{
    LatencyThresholds th;
    th.read = microseconds(250);
    th.write = microseconds(400);
    LatencyMonitor m(th);
    EXPECT_FALSE(m.isHighLatency(rd(), microseconds(250)));
    EXPECT_TRUE(m.isHighLatency(rd(), microseconds(251)));
    EXPECT_FALSE(m.isHighLatency(wr(), microseconds(300)));
    EXPECT_TRUE(m.isHighLatency(wr(), microseconds(401)));
}

TEST(LatencyMonitorTest, GcEventClassification)
{
    LatencyMonitor m;
    EXPECT_FALSE(m.isGcEvent(milliseconds(2)));
    EXPECT_TRUE(m.isGcEvent(milliseconds(4)));
}

TEST(LatencyMonitorTest, RollingAccuracyPerClass)
{
    LatencyMonitor m({}, 100);
    // 3 HL events: 2 caught; 5 NL events: 4 correct.
    m.record(true, true);
    m.record(true, true);
    m.record(false, true);
    for (int i = 0; i < 4; ++i)
        m.record(false, false);
    m.record(true, false);
    EXPECT_DOUBLE_EQ(m.rollingHlAccuracy(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.rollingNlAccuracy(), 4.0 / 5.0);
    EXPECT_EQ(m.rollingHlCount(), 3u);
}

TEST(LatencyMonitorTest, WindowEvictsOldOutcomes)
{
    LatencyMonitor m({}, 4);
    // Fill the window with misses, then with hits.
    for (int i = 0; i < 4; ++i)
        m.record(false, true);
    EXPECT_DOUBLE_EQ(m.rollingHlAccuracy(), 0.0);
    for (int i = 0; i < 4; ++i)
        m.record(true, true);
    EXPECT_DOUBLE_EQ(m.rollingHlAccuracy(), 1.0);
}

TEST(LatencyMonitorTest, EmptyWindowReportsPerfect)
{
    LatencyMonitor m;
    EXPECT_DOUBLE_EQ(m.rollingHlAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(m.rollingNlAccuracy(), 1.0);
    EXPECT_EQ(m.rollingHlCount(), 0u);
}

TEST(LatencyMonitorTest, PaperDefaultThresholds)
{
    LatencyMonitor m;
    // Table III uses 250us for both classes.
    EXPECT_EQ(m.thresholds().read, microseconds(250));
    EXPECT_EQ(m.thresholds().write, microseconds(250));
}

} // namespace
} // namespace ssdcheck::core
