/** @file Unit tests for ssd/ssd_config.h (volume routing math). */
#include <gtest/gtest.h>

#include <set>

#include "ssd/ssd_config.h"

namespace ssdcheck::ssd {
namespace {

TEST(SsdConfigTest, DefaultsAreValid)
{
    SsdConfig c;
    EXPECT_EQ(c.validate(), "");
    EXPECT_EQ(c.numVolumes(), 1u);
    EXPECT_EQ(c.bufferPages(), 62u); // 248KB / 4KB
}

TEST(SsdConfigTest, VolumeOfSingleVolumeAlwaysZero)
{
    SsdConfig c;
    for (uint64_t lba = 0; lba < c.capacitySectors(); lba += 99991)
        EXPECT_EQ(c.volumeOf(lba), 0u);
}

TEST(SsdConfigTest, VolumeOfOneBit)
{
    SsdConfig c;
    c.volumeBits = {17};
    EXPECT_EQ(c.numVolumes(), 2u);
    EXPECT_EQ(c.volumeOf(0), 0u);
    EXPECT_EQ(c.volumeOf(1ULL << 17), 1u);
    EXPECT_EQ(c.volumeOf((1ULL << 17) - 1), 0u);
    EXPECT_EQ(c.volumeOf((1ULL << 18)), 0u); // bit 18 not a selector
}

TEST(SsdConfigTest, VolumeOfTwoBits)
{
    SsdConfig c;
    c.volumeBits = {17, 18};
    EXPECT_EQ(c.numVolumes(), 4u);
    EXPECT_EQ(c.volumeOf(0), 0u);
    EXPECT_EQ(c.volumeOf(1ULL << 17), 1u);
    EXPECT_EQ(c.volumeOf(1ULL << 18), 2u);
    EXPECT_EQ(c.volumeOf((1ULL << 17) | (1ULL << 18)), 3u);
}

TEST(SsdConfigTest, LocalLpnIsDenseAndUniquePerVolume)
{
    SsdConfig c;
    c.userCapacityPages = 16 * 1024; // small for an exhaustive sweep
    c.volumeBits = {6, 9};
    // Walk every page; each volume's local LPNs must exactly cover
    // [0, userPagesPerVolume) with no duplicates.
    std::vector<std::set<uint64_t>> seen(c.numVolumes());
    for (uint64_t page = 0; page < c.userCapacityPages; ++page) {
        const uint64_t lba = page * blockdev::kSectorsPerPage;
        const uint32_t vol = c.volumeOf(lba);
        const uint64_t lpn = c.localLpn(lba);
        EXPECT_LT(lpn, c.userPagesPerVolume());
        EXPECT_TRUE(seen[vol].insert(lpn).second)
            << "duplicate lpn " << lpn << " in volume " << vol;
    }
    for (const auto &s : seen)
        EXPECT_EQ(s.size(), c.userPagesPerVolume());
}

TEST(SsdConfigTest, LocalLpnSingleVolumeIsPageIndex)
{
    SsdConfig c;
    for (uint64_t page : {0ULL, 1ULL, 77ULL, 130000ULL})
        EXPECT_EQ(c.localLpn(page * blockdev::kSectorsPerPage), page);
}

TEST(SsdConfigTest, PhysPagesIncludeOverprovisioning)
{
    SsdConfig c;
    EXPECT_GT(c.physPagesPerVolume(), c.userPagesPerVolume());
    EXPECT_EQ(c.physPagesPerVolume() % c.pagesPerBlock, 0u);
}

TEST(SsdConfigTest, VolumeGeometryCoversPhysPages)
{
    SsdConfig c;
    const auto g = c.volumeGeometry();
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.totalPlanes(), c.planesPerVolume);
    EXPECT_GE(g.totalPages(), c.physPagesPerVolume());
}

TEST(SsdConfigTest, ValidateRejectsBadConfigs)
{
    {
        SsdConfig c;
        c.volumeBits = {2}; // below page granularity
        EXPECT_NE(c.validate(), "");
    }
    {
        SsdConfig c;
        c.volumeBits = {40}; // beyond capacity
        EXPECT_NE(c.validate(), "");
    }
    {
        SsdConfig c;
        c.volumeBits = {17, 17}; // duplicate
        EXPECT_NE(c.validate(), "");
    }
    {
        SsdConfig c;
        c.gcHighBlocks = c.gcLowBlocks; // no hysteresis
        EXPECT_NE(c.validate(), "");
    }
    {
        SsdConfig c;
        c.opRatio = 0.01; // too little spare for GC
        EXPECT_NE(c.validate(), "");
    }
    {
        SsdConfig c;
        c.bufferBytes = 1024; // below one page
        EXPECT_NE(c.validate(), "");
    }
}

TEST(SsdConfigTest, BufferTypeNames)
{
    EXPECT_EQ(toString(BufferType::Back), "back");
    EXPECT_EQ(toString(BufferType::Fore), "fore");
}

} // namespace
} // namespace ssdcheck::ssd
