/** @file Unit tests for stats/latency_recorder.h. */
#include <gtest/gtest.h>

#include "sim/sim_time.h"
#include "stats/latency_recorder.h"

namespace ssdcheck::stats {
namespace {

using sim::microseconds;

TEST(LatencyRecorderTest, EmptyRecorderReturnsZeros)
{
    LatencyRecorder r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.min(), 0);
    EXPECT_EQ(r.max(), 0);
    EXPECT_EQ(r.percentile(99.5), 0);
    EXPECT_EQ(r.fractionBelow(100), 0.0);
}

TEST(LatencyRecorderTest, BasicStatistics)
{
    LatencyRecorder r;
    for (int v : {10, 20, 30, 40, 50})
        r.add(v);
    EXPECT_EQ(r.count(), 5u);
    EXPECT_DOUBLE_EQ(r.mean(), 30.0);
    EXPECT_EQ(r.min(), 10);
    EXPECT_EQ(r.max(), 50);
}

TEST(LatencyRecorderTest, NearestRankPercentiles)
{
    LatencyRecorder r;
    for (int i = 1; i <= 100; ++i)
        r.add(i);
    EXPECT_EQ(r.percentile(0), 1);
    EXPECT_EQ(r.percentile(1), 1);
    EXPECT_EQ(r.percentile(50), 50);
    EXPECT_EQ(r.percentile(99), 99);
    EXPECT_EQ(r.percentile(99.5), 100);
    EXPECT_EQ(r.percentile(100), 100);
}

TEST(LatencyRecorderTest, PercentileInterleavedWithAdds)
{
    LatencyRecorder r;
    r.add(5);
    EXPECT_EQ(r.percentile(50), 5);
    r.add(1); // invalidates the sorted cache
    EXPECT_EQ(r.percentile(50), 1);
    r.add(9);
    EXPECT_EQ(r.percentile(50), 5);
}

TEST(LatencyRecorderTest, FractionBelowIsInclusive)
{
    LatencyRecorder r;
    for (int v : {100, 200, 300, 400})
        r.add(v);
    EXPECT_DOUBLE_EQ(r.fractionBelow(100), 0.25);
    EXPECT_DOUBLE_EQ(r.fractionBelow(250), 0.5);
    EXPECT_DOUBLE_EQ(r.fractionBelow(400), 1.0);
    EXPECT_DOUBLE_EQ(r.fractionAbove(250), 0.5);
    EXPECT_DOUBLE_EQ(r.fractionAbove(400), 0.0);
}

TEST(LatencyRecorderTest, SortedIsAscending)
{
    LatencyRecorder r;
    for (int v : {5, 3, 9, 1, 7})
        r.add(v);
    const auto &s = r.sorted();
    ASSERT_EQ(s.size(), 5u);
    for (size_t i = 1; i < s.size(); ++i)
        EXPECT_LE(s[i - 1], s[i]);
}

TEST(LatencyRecorderTest, CdfSamplesQuantiles)
{
    LatencyRecorder r;
    for (int i = 1; i <= 1000; ++i)
        r.add(i);
    const auto cdf = r.cdf(10);
    ASSERT_EQ(cdf.size(), 10u);
    EXPECT_DOUBLE_EQ(cdf.front().first, 0.1);
    EXPECT_EQ(cdf.front().second, 100);
    EXPECT_DOUBLE_EQ(cdf.back().first, 1.0);
    EXPECT_EQ(cdf.back().second, 1000);
}

TEST(LatencyRecorderTest, MergeCombinesSamples)
{
    LatencyRecorder a, b;
    a.add(1);
    a.add(2);
    b.add(3);
    b.add(4);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.max(), 4);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(LatencyRecorderTest, ClearResets)
{
    LatencyRecorder r;
    r.add(microseconds(100));
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.percentile(50), 0);
}

TEST(LatencyRecorderTest, TailPercentileOfSkewedDistribution)
{
    // 990 fast + 10 slow samples: p99 must be fast, p99.5 slow.
    LatencyRecorder r;
    for (int i = 0; i < 990; ++i)
        r.add(microseconds(100));
    for (int i = 0; i < 10; ++i)
        r.add(microseconds(5000));
    EXPECT_EQ(r.percentile(99), microseconds(100));
    EXPECT_EQ(r.percentile(99.5), microseconds(5000));
}

} // namespace
} // namespace ssdcheck::stats
