/** @file Unit tests for core/gc_model.h. */
#include <gtest/gtest.h>

#include "core/gc_model.h"

namespace ssdcheck::core {
namespace {

TEST(GcModelTest, NoPredictionWithoutHistory)
{
    GcModel m;
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(m.gcExpectedOnNextFlush());
        m.onFlush();
    }
}

TEST(GcModelTest, IntervalCounterTracksFlushes)
{
    GcModel m;
    m.onFlush();
    m.onFlush();
    EXPECT_EQ(m.intervalCounter(), 2u);
    m.onGcObserved();
    EXPECT_EQ(m.intervalCounter(), 0u);
    ASSERT_EQ(m.history().size(), 1u);
    EXPECT_EQ(m.history().front(), 2u);
}

TEST(GcModelTest, PredictsAtQuantileOfHistory)
{
    GcModelConfig cfg;
    cfg.minHistory = 4;
    cfg.quantile = 0.25;
    GcModel m(cfg);
    // History: intervals of exactly 10 flushes.
    for (int e = 0; e < 6; ++e) {
        for (int f = 0; f < 10; ++f)
            m.onFlush();
        m.onGcObserved();
    }
    // Counter at 8: next flush makes 9 < 10 -> not expected yet.
    for (int f = 0; f < 8; ++f)
        m.onFlush();
    EXPECT_FALSE(m.gcExpectedOnNextFlush());
    m.onFlush(); // counter 9: next flush reaches 10
    EXPECT_TRUE(m.gcExpectedOnNextFlush());
}

TEST(GcModelTest, QuantileIsConservativeForSpreadHistory)
{
    GcModelConfig cfg;
    cfg.minHistory = 4;
    cfg.quantile = 0.25;
    GcModel m(cfg);
    // Intervals 8, 12, 16, 20: q25 = 8 -> predict from counter 7.
    for (const uint32_t interval : {8u, 12u, 16u, 20u}) {
        for (uint32_t f = 0; f < interval; ++f)
            m.onFlush();
        m.onGcObserved();
    }
    for (int f = 0; f < 7; ++f)
        m.onFlush();
    EXPECT_TRUE(m.gcExpectedOnNextFlush());
}

TEST(GcModelTest, HistoryWindowEvictsOldest)
{
    GcModelConfig cfg;
    cfg.historyWindow = 3;
    GcModel m(cfg);
    for (uint32_t e = 1; e <= 5; ++e) {
        for (uint32_t f = 0; f < e; ++f)
            m.onFlush();
        m.onGcObserved();
    }
    ASSERT_EQ(m.history().size(), 3u);
    EXPECT_EQ(m.history().front(), 3u);
    EXPECT_EQ(m.history().back(), 5u);
}

TEST(GcModelTest, ResetHistoryClearsEverything)
{
    GcModel m;
    for (int e = 0; e < 10; ++e) {
        m.onFlush();
        m.onGcObserved();
    }
    m.onFlush();
    m.resetHistory();
    EXPECT_TRUE(m.history().empty());
    EXPECT_EQ(m.intervalCounter(), 0u);
    EXPECT_FALSE(m.gcExpectedOnNextFlush());
}

TEST(GcModelTest, MinHistoryGatesPrediction)
{
    GcModelConfig cfg;
    cfg.minHistory = 6;
    GcModel m(cfg);
    for (int e = 0; e < 5; ++e) {
        m.onFlush();
        m.onGcObserved();
    }
    m.onFlush();
    EXPECT_FALSE(m.gcExpectedOnNextFlush()); // only 5 < 6 samples
    m.onGcObserved();
    EXPECT_TRUE(m.gcExpectedOnNextFlush()); // 6 samples, threshold 1
}

} // namespace
} // namespace ssdcheck::core
