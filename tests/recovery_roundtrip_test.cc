/**
 * @file
 * Resume-equivalence property test for the checkpoint/restore
 * subsystem: a fault-heavy accuracy run checkpointed at every k-th
 * request and resumed in a fresh stack must finish with bit-identical
 * final snapshot bytes, identical metrics JSON, identical virtual end
 * time and identical accuracy counters — the determinism contract the
 * chaos soak harness (tools/soak) relies on.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "recovery/invariants.h"
#include "recovery/run_state.h"
#include "recovery/snapshot.h"

namespace ssdcheck::recovery {
namespace {

/** Fault-heavy, supervised run small enough for a unit test. */
RunParams
propParams()
{
    RunParams p;
    p.device = "A";
    p.faults = "hostile";
    p.workload = "RW Mixed";
    p.scale = 0.004;
    p.supervisor = true;
    return p;
}

struct GoldenRun
{
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> snapshots;
    std::vector<uint8_t> finalBytes;
    std::string finalMetrics;
    sim::SimTime finalNow;
    core::AccuracyResult finalAcc;
    uint64_t traceSize = 0;
};

/** One uninterrupted run, checkpointing every @p stride requests. */
GoldenRun
runGolden(const RunParams &params, uint64_t stride)
{
    GoldenRun g;
    std::string err;
    auto run = CheckpointableRun::create(params, false, &err);
    EXPECT_NE(run, nullptr) << err;
    if (!run)
        return g;
    g.traceSize = run->trace().size();
    while (!run->done()) {
        run->step();
        if (!run->done() && run->cursor() % stride == 0)
            g.snapshots.emplace_back(run->cursor(),
                                     run->checkpoint().serialize());
    }
    EXPECT_TRUE(checkInvariants(*run).empty());
    g.finalBytes = run->checkpoint().serialize();
    g.finalMetrics = run->metricsJson();
    g.finalNow = run->now();
    g.finalAcc = run->accuracy();
    return g;
}

TEST(RecoveryRoundtripTest, ResumeAtEveryStrideIsBitIdentical)
{
    const RunParams params = propParams();
    const uint64_t stride = 97; // prime: hits uneven resume points
    const GoldenRun golden = runGolden(params, stride);
    ASSERT_FALSE(golden.snapshots.empty());
    ASSERT_GT(golden.traceSize, 3 * stride)
        << "trace too small to exercise multiple resume points";

    for (const auto &[k, bytes] : golden.snapshots) {
        SCOPED_TRACE("resume at request " + std::to_string(k));
        Snapshot snap;
        std::string detail;
        ASSERT_EQ(snap.parse(bytes, &detail), LoadError::Ok) << detail;
        EXPECT_EQ(snap.requestIndex(), k);

        std::string err;
        auto resumed = CheckpointableRun::create(params, true, &err);
        ASSERT_NE(resumed, nullptr) << err;
        ASSERT_EQ(resumed->restore(snap, &detail), LoadError::Ok) << detail;
        EXPECT_EQ(resumed->cursor(), k);

        const auto violations = checkInvariants(*resumed);
        EXPECT_TRUE(violations.empty())
            << "first violation: "
            << (violations.empty() ? "" : violations.front());

        while (!resumed->done())
            resumed->step();

        EXPECT_EQ(resumed->checkpoint().serialize(), golden.finalBytes)
            << "final snapshot bytes differ from the uninterrupted run";
        EXPECT_EQ(resumed->metricsJson(), golden.finalMetrics);
        EXPECT_EQ(resumed->now(), golden.finalNow);
        EXPECT_EQ(resumed->accuracy().nlTotal, golden.finalAcc.nlTotal);
        EXPECT_EQ(resumed->accuracy().nlCorrect, golden.finalAcc.nlCorrect);
        EXPECT_EQ(resumed->accuracy().hlTotal, golden.finalAcc.hlTotal);
        EXPECT_EQ(resumed->accuracy().hlCorrect, golden.finalAcc.hlCorrect);
        EXPECT_EQ(resumed->accuracy().faulted, golden.finalAcc.faulted);
    }
}

TEST(RecoveryRoundtripTest, ChainedResumesStayBitIdentical)
{
    // Kill-and-resume repeatedly (what the soak does across processes,
    // here in-process): checkpoint, rebuild from bytes, continue.
    const RunParams params = propParams();
    std::string err;
    auto golden = CheckpointableRun::create(params, false, &err);
    ASSERT_NE(golden, nullptr) << err;
    const uint64_t traceSize = golden->trace().size();
    while (!golden->done())
        golden->step();
    const std::vector<uint8_t> goldenFinal =
        golden->checkpoint().serialize();

    auto run = CheckpointableRun::create(params, false, &err);
    ASSERT_NE(run, nullptr) << err;
    const uint64_t hop = traceSize / 7 + 1;
    uint64_t target = hop;
    while (!run->done()) {
        run->step();
        if (run->cursor() >= target && !run->done()) {
            const std::vector<uint8_t> bytes =
                run->checkpoint().serialize();
            Snapshot snap;
            ASSERT_EQ(snap.parse(bytes), LoadError::Ok);
            auto next = CheckpointableRun::create(params, true, &err);
            ASSERT_NE(next, nullptr) << err;
            std::string detail;
            ASSERT_EQ(next->restore(snap, &detail), LoadError::Ok)
                << detail;
            run = std::move(next);
            target += hop;
        }
    }
    EXPECT_EQ(run->checkpoint().serialize(), goldenFinal);
}

TEST(RecoveryRoundtripTest, ConfigMismatchIsRefusedWithDetail)
{
    RunParams params = propParams();
    params.scale = 0.002; // keep this variant quick
    std::string err;
    auto run = CheckpointableRun::create(params, false, &err);
    ASSERT_NE(run, nullptr) << err;
    for (int i = 0; i < 10; ++i)
        run->step();
    const std::vector<uint8_t> bytes = run->checkpoint().serialize();
    Snapshot snap;
    ASSERT_EQ(snap.parse(bytes), LoadError::Ok);

    RunParams other = params;
    other.scale = 0.003;
    auto resumed = CheckpointableRun::create(other, true, &err);
    ASSERT_NE(resumed, nullptr) << err;
    std::string detail;
    EXPECT_EQ(resumed->restore(snap, &detail), LoadError::ConfigMismatch);
    // The message names this run's canonical config so the operator
    // can see what to change (or pass --force).
    EXPECT_NE(detail.find("different run configuration"), std::string::npos);
    EXPECT_NE(detail.find(other.canonical()), std::string::npos);
}

TEST(RecoveryRoundtripTest, MissingSectionIsTypedError)
{
    RunParams params = propParams();
    params.scale = 0.002;
    params.supervisor = false;
    std::string err;
    auto run = CheckpointableRun::create(params, false, &err);
    ASSERT_NE(run, nullptr) << err;
    for (int i = 0; i < 5; ++i)
        run->step();
    const Snapshot full = run->checkpoint();

    // Rebuild the container without the registry section.
    Snapshot stripped;
    stripped.begin(full.configHash(), full.requestIndex(),
                   full.simTimeNs());
    for (const SectionId id :
         {SectionId::Device, SectionId::Model, SectionId::Resilient,
          SectionId::Accuracy, SectionId::RunParams}) {
        const std::vector<uint8_t> *payload = full.section(id);
        ASSERT_NE(payload, nullptr);
        stripped.addSection(id, *payload);
    }
    Snapshot reparsed;
    ASSERT_EQ(reparsed.parse(stripped.serialize()), LoadError::Ok);

    auto resumed = CheckpointableRun::create(params, true, &err);
    ASSERT_NE(resumed, nullptr) << err;
    std::string detail;
    EXPECT_EQ(resumed->restore(reparsed, &detail),
              LoadError::MissingSection);
    EXPECT_NE(detail.find("registry"), std::string::npos);
}

TEST(RecoveryRoundtripTest, SupervisorSectionRejectedWithoutSupervisor)
{
    RunParams withSup = propParams();
    withSup.scale = 0.002;
    std::string err;
    auto run = CheckpointableRun::create(withSup, false, &err);
    ASSERT_NE(run, nullptr) << err;
    for (int i = 0; i < 5; ++i)
        run->step();
    Snapshot snap;
    ASSERT_EQ(snap.parse(run->checkpoint().serialize()), LoadError::Ok);

    RunParams noSup = withSup;
    noSup.supervisor = false;
    auto resumed = CheckpointableRun::create(noSup, true, &err);
    ASSERT_NE(resumed, nullptr) << err;
    // forceConfig=true to get past the (correct) hash refusal and
    // prove the structural check still catches the mismatch.
    std::string detail;
    EXPECT_EQ(resumed->restore(snap, &detail, /*forceConfig=*/true),
              LoadError::Malformed);
    EXPECT_NE(detail.find("supervisor"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::recovery
