/** @file Tests for read-disturb exposure tracking and refresh. */
#include <gtest/gtest.h>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/garbage_collector.h"
#include "ssd/page_mapper.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::ssd {
namespace {

nand::NandGeometry
geo()
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g;
}

TEST(ReadDisturbTest, ReadCountTracksAndResetsOnErase)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    arr.programPage(nand::Ppn{0}, 42);
    EXPECT_EQ(arr.blockReadCount(nand::Pbn{0}), 0u);
    for (int i = 0; i < 5; ++i)
        arr.readPage(nand::Ppn{0});
    EXPECT_EQ(arr.blockReadCount(nand::Pbn{0}), 5u);
    arr.eraseBlock(nand::Pbn{0});
    EXPECT_EQ(arr.blockReadCount(nand::Pbn{0}), 0u);
}

TEST(ReadDisturbTest, RefreshRelocatesHotReadBlock)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160);
    GarbageCollector gc(m, arr, 3, 6, /*wearThreshold=*/0,
                        /*readDisturbLimit=*/100);
    for (uint64_t lpn = 0; lpn < 160; ++lpn)
        m.writePage(Lpn{lpn}, 2000 + lpn);

    // Hammer reads on lpn 0's block past the limit.
    const nand::Pbn hot{m.lookup(Lpn{0}).value() /
                        arr.geometry().pagesPerBlock};
    for (int i = 0; i < 150; ++i)
        m.readPage(Lpn{0}, nullptr);
    ASSERT_GT(arr.blockReadCount(hot), 100u);

    const GcResult res = gc.collect();
    EXPECT_GT(res.refreshMoves, 0u);
    // The data moved off the disturbed block...
    const nand::Pbn now{m.lookup(Lpn{0}).value() /
                        arr.geometry().pagesPerBlock};
    EXPECT_NE(now, hot);
    // ...with content intact and the FTL consistent.
    uint64_t payload = 0;
    ASSERT_TRUE(m.readPage(Lpn{0}, &payload));
    EXPECT_EQ(payload, 2000u);
    EXPECT_EQ(m.checkConsistency(), "");
    EXPECT_EQ(arr.blockReadCount(hot), 0u); // erased
}

TEST(ReadDisturbTest, NoRefreshBelowLimit)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160);
    GarbageCollector gc(m, arr, 3, 6, 0, /*readDisturbLimit=*/1000);
    for (uint64_t lpn = 0; lpn < 160; ++lpn)
        m.writePage(Lpn{lpn}, lpn);
    for (int i = 0; i < 100; ++i)
        m.readPage(Lpn{0}, nullptr);
    const GcResult res = gc.collect();
    EXPECT_EQ(res.refreshMoves, 0u);
}

TEST(ReadDisturbTest, DisabledByDefault)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160);
    GarbageCollector gc(m, arr, 3, 6); // limit 0 = off
    for (uint64_t lpn = 0; lpn < 160; ++lpn)
        m.writePage(Lpn{lpn}, lpn);
    for (int i = 0; i < 100000; ++i)
        m.readPage(Lpn{0}, nullptr);
    EXPECT_EQ(gc.collect().refreshMoves, 0u);
}

TEST(ReadDisturbTest, DeviceLevelRefreshUnderReadHammer)
{
    SsdConfig cfg;
    cfg.userCapacityPages = 4096;
    cfg.bufferBytes = 8 * 4096;
    cfg.planesPerVolume = 4;
    cfg.pagesPerBlock = 8;
    cfg.jitterSigma = 0.0;
    cfg.hiccupProbability = 0.0;
    cfg.readDisturbLimit = 500;
    SsdDevice dev(cfg);
    dev.precondition();
    sim::Rng rng(3);
    sim::SimTime t;
    // Read-hammer one page; sprinkle writes so GC (the refresh hook)
    // keeps running.
    for (int i = 0; i < 60000; ++i) {
        blockdev::IoRequest req = (i % 10 == 0)
                                      ? blockdev::makeWrite4k(
                                            rng.nextBelow(4096))
                                      : blockdev::makeRead4k(7);
        t = dev.submit(req, t).completeTime;
    }
    EXPECT_GT(dev.totalCounters().readRefreshMoves, 0u);
}

} // namespace
} // namespace ssdcheck::ssd
