/** @file Unit tests for sim/sim_time.h. */
#include <gtest/gtest.h>

#include "sim/sim_time.h"

namespace ssdcheck::sim {
namespace {

TEST(SimTimeTest, UnitConstructorsCompose)
{
    EXPECT_EQ(nanoseconds(1), 1);
    EXPECT_EQ(microseconds(1), 1000);
    EXPECT_EQ(milliseconds(1), 1000000);
    EXPECT_EQ(seconds(1), 1000000000);
    EXPECT_EQ(microseconds(250), nanoseconds(250000));
    EXPECT_EQ(milliseconds(3), microseconds(3000));
    EXPECT_EQ(seconds(2), milliseconds(2000));
}

TEST(SimTimeTest, ConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(toMicros(microseconds(250)), 250.0);
    EXPECT_DOUBLE_EQ(toMillis(milliseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(3)), 3.0);
    EXPECT_DOUBLE_EQ(toMicros(nanoseconds(1500)), 1.5);
}

TEST(SimTimeTest, ConversionsHandleFractions)
{
    EXPECT_DOUBLE_EQ(toMillis(microseconds(1500)), 1.5);
    EXPECT_DOUBLE_EQ(toSeconds(milliseconds(250)), 0.25);
}

TEST(SimTimeTest, DurationsAreSignedAndSubtractable)
{
    const SimTime a = kTimeZero + microseconds(100);
    const SimTime b = kTimeZero + microseconds(350);
    EXPECT_EQ(b - a, microseconds(250));
    EXPECT_LT(a - b, 0);
}

TEST(SimTimeTest, PointPlusDurationIsAPoint)
{
    SimTime t{1000};
    t += microseconds(1);
    EXPECT_EQ(t.ns(), 1000 + 1000);
    t -= nanoseconds(500);
    EXPECT_EQ(t.ns(), 1500);
    EXPECT_EQ((t + nanoseconds(500)).ns(), 2000);
    EXPECT_EQ((nanoseconds(500) + t).ns(), 2000);
    EXPECT_EQ((t - nanoseconds(500)).ns(), 1000);
}

TEST(SimTimeTest, PointsCompare)
{
    const SimTime a{10};
    const SimTime b{20};
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a != b);
    EXPECT_TRUE(a == SimTime{10});
    EXPECT_EQ(kTimeZero.ns(), 0);
}

TEST(SimTimeTest, FormatPicksReadableUnits)
{
    EXPECT_EQ(formatDuration(nanoseconds(500)), "500ns");
    EXPECT_EQ(formatDuration(microseconds(250)), "250.0us");
    EXPECT_EQ(formatDuration(milliseconds(3)), "3.00ms");
    EXPECT_EQ(formatDuration(seconds(2)), "2.000s");
}

TEST(SimTimeTest, FormatSubUnitValues)
{
    EXPECT_EQ(formatDuration(microseconds(1500)), "1.50ms");
    EXPECT_EQ(formatDuration(nanoseconds(999)), "999ns");
    EXPECT_EQ(formatDuration(0), "0ns");
}

} // namespace
} // namespace ssdcheck::sim
