/** @file Unit tests for workload/synthetic.h. */
#include <gtest/gtest.h>

#include "workload/synthetic.h"

namespace ssdcheck::workload {
namespace {

TEST(MixedTraceTest, HonorsRequestCountAndSpan)
{
    MixedTraceParams p;
    p.requests = 5000;
    p.spanPages = 1000;
    const Trace t = buildMixedTrace(p, "t");
    EXPECT_EQ(t.size(), 5000u);
    for (const auto &r : t.records()) {
        EXPECT_LT(r.req.lba + r.req.sectors,
                  (p.spanPages + 1) * blockdev::kSectorsPerPage);
    }
}

TEST(MixedTraceTest, WriteFractionTracksParameter)
{
    for (const double wf : {0.1, 0.5, 0.9}) {
        MixedTraceParams p;
        p.requests = 20000;
        p.writeFraction = wf;
        p.seed = 11;
        const Trace t = buildMixedTrace(p, "t");
        EXPECT_NEAR(t.characterize().writeFraction, wf, 0.02);
    }
}

TEST(MixedTraceTest, RandomFractionTracksParameter)
{
    for (const double rf : {0.15, 0.5, 1.0}) {
        MixedTraceParams p;
        p.requests = 20000;
        p.randomFraction = rf;
        p.seed = 13;
        const Trace t = buildMixedTrace(p, "t");
        // Sequential continuations occasionally jump at the span edge,
        // so measured randomness can sit slightly above the parameter.
        EXPECT_NEAR(t.characterize().randomFraction, rf, 0.05);
    }
}

TEST(MixedTraceTest, SizeMixProducesMultiPageRequests)
{
    MixedTraceParams p;
    p.requests = 10000;
    p.twoPageFraction = 0.2;
    p.fourPageFraction = 0.1;
    p.seed = 17;
    const Trace t = buildMixedTrace(p, "t");
    int two = 0, four = 0;
    for (const auto &r : t.records()) {
        if (r.req.pages() == 2)
            ++two;
        if (r.req.pages() == 4)
            ++four;
    }
    EXPECT_NEAR(two / 10000.0, 0.2, 0.02);
    EXPECT_NEAR(four / 10000.0, 0.1, 0.02);
}

TEST(MixedTraceTest, DeterministicForSameSeed)
{
    MixedTraceParams p;
    p.requests = 100;
    const Trace a = buildMixedTrace(p, "a");
    const Trace b = buildMixedTrace(p, "b");
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].req.lba, b[i].req.lba);
        EXPECT_EQ(a[i].req.type, b[i].req.type);
    }
}

TEST(RandomWriteTraceTest, AllWrites)
{
    const Trace t = buildRandomWriteTrace(1000, 512, 3);
    EXPECT_EQ(t.size(), 1000u);
    for (const auto &r : t.records())
        EXPECT_TRUE(r.req.isWrite());
    EXPECT_GT(t.characterize().randomFraction, 0.95);
}

TEST(RwMixedTraceTest, HalfReadsHalfWrites)
{
    const Trace t = buildRwMixedTrace(20000, 512, 5);
    const auto s = t.characterize();
    EXPECT_NEAR(s.writeFraction, 0.5, 0.02);
    EXPECT_GT(s.randomFraction, 0.95);
}

} // namespace
} // namespace ssdcheck::workload
