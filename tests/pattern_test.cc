/** @file Unit tests for workload/pattern.h. */
#include <gtest/gtest.h>

#include <set>

#include "blockdev/request.h"
#include "workload/pattern.h"

namespace ssdcheck::workload {
namespace {

using blockdev::kSectorsPerPage;

TEST(UniformPatternTest, PageAlignedWithinSpan)
{
    UniformPattern p(100);
    sim::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t lba = p.nextLba(rng);
        EXPECT_EQ(lba % kSectorsPerPage, 0u);
        EXPECT_LT(lba, 100 * kSectorsPerPage);
    }
}

TEST(UniformPatternTest, CoversSpan)
{
    UniformPattern p(16);
    sim::Rng rng(2);
    std::set<uint64_t> pages;
    for (int i = 0; i < 2000; ++i)
        pages.insert(p.nextLba(rng) / kSectorsPerPage);
    EXPECT_EQ(pages.size(), 16u);
}

TEST(BitFixedPatternTest, PinnedBitAlwaysHoldsValue)
{
    sim::Rng rng(3);
    for (const bool value : {false, true}) {
        BitFixedPattern p(1 << 14, 10, value);
        for (int i = 0; i < 500; ++i) {
            const uint64_t lba = p.nextLba(rng);
            EXPECT_EQ((lba >> 10) & 1, value ? 1u : 0u);
            EXPECT_LT(lba, (1ULL << 14) * kSectorsPerPage);
            EXPECT_EQ(lba % kSectorsPerPage, 0u);
        }
    }
}

TEST(BitFixedPatternTest, OtherBitsStillVary)
{
    BitFixedPattern p(1 << 14, 10, false);
    sim::Rng rng(4);
    std::set<uint64_t> lbas;
    for (int i = 0; i < 200; ++i)
        lbas.insert(p.nextLba(rng));
    EXPECT_GT(lbas.size(), 100u);
}

TEST(SequentialPatternTest, AdvancesAndWraps)
{
    SequentialPattern p(2, 4); // pages 2,3,4,5 then wrap
    sim::Rng rng(5);
    EXPECT_EQ(p.nextLba(rng), 2 * kSectorsPerPage);
    EXPECT_EQ(p.nextLba(rng), 3 * kSectorsPerPage);
    EXPECT_EQ(p.nextLba(rng), 4 * kSectorsPerPage);
    EXPECT_EQ(p.nextLba(rng), 5 * kSectorsPerPage);
    EXPECT_EQ(p.nextLba(rng), 2 * kSectorsPerPage);
}

TEST(FixedPatternTest, AlwaysSameAddress)
{
    FixedPattern p(12345 * kSectorsPerPage);
    sim::Rng rng(6);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.nextLba(rng), 12345 * kSectorsPerPage);
}

TEST(FlipPatternTest, AlternatesExactlyOneBit)
{
    const uint64_t base = 40;
    FlipPattern p(base, 17);
    sim::Rng rng(7);
    const uint64_t a = p.nextLba(rng);
    const uint64_t b = p.nextLba(rng);
    const uint64_t c = p.nextLba(rng);
    EXPECT_EQ(a, base);
    EXPECT_EQ(b, base ^ (1ULL << 17));
    EXPECT_EQ(c, base);
    EXPECT_EQ(a ^ b, 1ULL << 17);
}

} // namespace
} // namespace ssdcheck::workload
