/** @file Tests that the presets encode Table I / Fig. 3 ground truth. */
#include <gtest/gtest.h>

#include "ssd/presets.h"

namespace ssdcheck::ssd {
namespace {

TEST(PresetsTest, AllModelsEnumerated)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(toString(models.front()), "A");
    EXPECT_EQ(toString(models.back()), "G");
}

TEST(PresetsTest, EveryPresetValidates)
{
    for (const SsdModel m : allModels())
        EXPECT_EQ(makePreset(m).validate(), "") << toString(m);
}

TEST(PresetsTest, TableIGroundTruth)
{
    struct Row
    {
        SsdModel model;
        size_t volumeBits;
        uint32_t bufferKb;
        BufferType type;
        bool readTrigger;
    };
    const Row rows[] = {
        {SsdModel::A, 0, 248, BufferType::Back, false},
        {SsdModel::B, 0, 248, BufferType::Back, false},
        {SsdModel::C, 0, 256, BufferType::Back, false},
        {SsdModel::D, 1, 128, BufferType::Back, false},
        {SsdModel::E, 2, 128, BufferType::Back, false},
        {SsdModel::F, 0, 128, BufferType::Fore, true},
        {SsdModel::G, 0, 128, BufferType::Fore, true},
    };
    for (const Row &r : rows) {
        const SsdConfig c = makePreset(r.model);
        EXPECT_EQ(c.volumeBits.size(), r.volumeBits) << toString(r.model);
        EXPECT_EQ(c.bufferBytes, r.bufferKb * 1024u) << toString(r.model);
        EXPECT_EQ(c.bufferType, r.type) << toString(r.model);
        EXPECT_EQ(c.readTriggerFlush, r.readTrigger) << toString(r.model);
    }
}

TEST(PresetsTest, VolumeIndicesMatchPaper)
{
    EXPECT_EQ(makePreset(SsdModel::D).volumeBits,
              (std::vector<uint32_t>{17}));
    EXPECT_EQ(makePreset(SsdModel::E).volumeBits,
              (std::vector<uint32_t>{17, 18}));
}

TEST(PresetsTest, OnlyDandEHaveSlcCache)
{
    for (const SsdModel m : allModels()) {
        const bool expect = m == SsdModel::D || m == SsdModel::E;
        EXPECT_EQ(makePreset(m).slcCache, expect) << toString(m);
    }
}

TEST(PresetsTest, SeedSaltChangesSeedOnly)
{
    const SsdConfig a = makePreset(SsdModel::A, 0);
    const SsdConfig b = makePreset(SsdModel::A, 1);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_EQ(a.bufferBytes, b.bufferBytes);
    EXPECT_EQ(a.volumeBits, b.volumeBits);
}

TEST(PresetsTest, PrototypeVariantsFlags)
{
    EXPECT_TRUE(makePrototype(PrototypeVariant::Optimal).optimalMode);
    {
        const auto c = makePrototype(PrototypeVariant::Others);
        EXPECT_FALSE(c.wbFlushCostEnabled);
        EXPECT_FALSE(c.gcCostEnabled);
        EXPECT_FALSE(c.optimalMode);
    }
    {
        const auto c = makePrototype(PrototypeVariant::WbOthers);
        EXPECT_TRUE(c.wbFlushCostEnabled);
        EXPECT_FALSE(c.gcCostEnabled);
    }
    {
        const auto c = makePrototype(PrototypeVariant::GcOthers);
        EXPECT_FALSE(c.wbFlushCostEnabled);
        EXPECT_TRUE(c.gcCostEnabled);
    }
    {
        const auto c = makePrototype(PrototypeVariant::All);
        EXPECT_TRUE(c.wbFlushCostEnabled);
        EXPECT_TRUE(c.gcCostEnabled);
    }
}

TEST(PresetsTest, PrototypeHasPaperGeometry)
{
    // 4 channels x 4 chips x 2 planes = 32 planes (paper §III-A).
    const auto c = makePrototype(PrototypeVariant::All);
    EXPECT_EQ(c.planesPerVolume, 32u);
    EXPECT_EQ(c.numVolumes(), 1u);
    EXPECT_EQ(c.validate(), "");
    EXPECT_EQ(c.hiccupProbability, 0.0); // clean instrumented device
}

TEST(PresetsTest, PrototypeVariantNames)
{
    EXPECT_EQ(toString(PrototypeVariant::Optimal), "SSD_Optimal");
    EXPECT_EQ(toString(PrototypeVariant::All), "SSD_All");
    EXPECT_EQ(allPrototypeVariants().size(), 5u);
}

} // namespace
} // namespace ssdcheck::ssd
