/**
 * @file
 * Unit tests of the misprediction audit log: cause-classification
 * precedence, report bucketing, and the JSONL round trip the
 * tools/audit binary consumes.
 */
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/audit_log.h"
#include "sim/sim_time.h"

namespace ssdcheck::obs {
namespace {

constexpr sim::SimDuration kGcThreshold = sim::milliseconds(3);

AuditRecord
hlMiss(sim::SimDuration actualNs)
{
    AuditRecord r;
    r.actualNs = actualNs;
    r.actualHl = true;
    r.predictedHl = false;
    r.flushEstimateNs = sim::microseconds(400);
    return r;
}

TEST(ClassifyAudit, NonMissesAreNone)
{
    AuditRecord hit = hlMiss(sim::milliseconds(5));
    hit.predictedHl = true; // correctly called: not a miss
    EXPECT_EQ(classifyAudit(hit, kGcThreshold), AuditCause::None);

    AuditRecord nl;
    nl.actualHl = false;
    nl.status = 1; // even a faulted NL request is not an HL miss
    EXPECT_EQ(classifyAudit(nl, kGcThreshold), AuditCause::None);
}

TEST(ClassifyAudit, FaultTaintTrumpsMagnitude)
{
    AuditRecord r = hlMiss(sim::milliseconds(10)); // GC-magnitude...
    r.status = 2;
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::FaultTaint);
    r.status = 0;
    r.attempts = 3; // ...or host-retried: still taint first.
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::FaultTaint);
}

TEST(ClassifyAudit, GcMagnitudeTrumpsFlushMagnitude)
{
    const AuditRecord r = hlMiss(kGcThreshold + 1);
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::GcDrift);
    // At exactly the threshold it is not GC-magnitude.
    EXPECT_EQ(classifyAudit(hlMiss(kGcThreshold), kGcThreshold),
              AuditCause::UnmodeledFlush);
    // Threshold 0 = unknown threshold: never classify as GC.
    EXPECT_EQ(classifyAudit(r, 0), AuditCause::UnmodeledFlush);
}

TEST(ClassifyAudit, FlushBandIsHalfTheCalibratedEstimate)
{
    AuditRecord r = hlMiss(sim::microseconds(200)); // exactly half
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::UnmodeledFlush);
    r.actualNs = sim::microseconds(199);
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::Unknown);
    r.flushEstimateNs = 0; // uncalibrated: cannot claim flush
    r.actualNs = sim::microseconds(300);
    EXPECT_EQ(classifyAudit(r, kGcThreshold), AuditCause::Unknown);
}

TEST(AuditLog, AnalyzeBucketsByCause)
{
    AuditLog log(kGcThreshold);
    log.add(hlMiss(sim::milliseconds(5)));  // gc-drift
    log.add(hlMiss(sim::microseconds(300))); // unmodeled-flush
    AuditRecord taint = hlMiss(sim::milliseconds(5));
    taint.attempts = 2;
    log.add(taint);
    AuditRecord hit = hlMiss(sim::milliseconds(5));
    hit.predictedHl = true; // HL event, correctly predicted
    log.add(hit);
    AuditRecord nl;
    log.add(nl);

    const AuditReport rep = log.analyze();
    EXPECT_EQ(rep.total, 5u);
    EXPECT_EQ(rep.hlEvents, 4u);
    EXPECT_EQ(rep.hlMisses, 3u);
    EXPECT_EQ(rep.gcDrift, 1u);
    EXPECT_EQ(rep.unmodeledFlush, 1u);
    EXPECT_EQ(rep.faultTaint, 1u);
    EXPECT_EQ(rep.unknown, 0u);
    EXPECT_EQ(log.causeOf(0), AuditCause::GcDrift);

    const std::string text = rep.format();
    EXPECT_NE(text.find("HL misses:          3"), std::string::npos) << text;
    EXPECT_NE(text.find("gc-drift:         1 (33.3%)"), std::string::npos)
        << text;
}

TEST(AuditLog, JsonlRoundTripPreservesEveryField)
{
    AuditLog log(kGcThreshold);
    AuditRecord r;
    r.submit = sim::kTimeZero + sim::seconds(2);
    r.actualNs = sim::milliseconds(4);
    r.predictedEetNs = sim::microseconds(120);
    r.type = 2;
    r.status = 0;
    r.attempts = 1;
    r.predictedHl = false;
    r.actualHl = true;
    r.flushExpected = true;
    r.gcExpected = false;
    r.volume = 3;
    r.bufferCounter = 17;
    r.bufferSize = 62;
    r.gcIntervalCounter = 40;
    r.flushEstimateNs = sim::microseconds(400);
    r.gcEstimateNs = sim::milliseconds(6);
    log.add(r);

    std::ostringstream os;
    log.writeJsonl(os);
    const std::string line = os.str();
    EXPECT_NE(line.find("\"actual_ns\":4000000"), std::string::npos) << line;
    EXPECT_NE(line.find("\"cause\":\"gc-drift\""), std::string::npos) << line;

    std::istringstream is(line);
    AuditLog back(kGcThreshold);
    ASSERT_TRUE(AuditLog::readJsonl(is, &back));
    ASSERT_EQ(back.size(), 1u);
    const AuditRecord &b = back.records()[0];
    EXPECT_EQ(b.submit, r.submit);
    EXPECT_EQ(b.actualNs, r.actualNs);
    EXPECT_EQ(b.predictedEetNs, r.predictedEetNs);
    EXPECT_EQ(b.type, r.type);
    EXPECT_EQ(b.status, r.status);
    EXPECT_EQ(b.attempts, r.attempts);
    EXPECT_EQ(b.predictedHl, r.predictedHl);
    EXPECT_EQ(b.actualHl, r.actualHl);
    EXPECT_EQ(b.flushExpected, r.flushExpected);
    EXPECT_EQ(b.gcExpected, r.gcExpected);
    EXPECT_EQ(b.volume, r.volume);
    EXPECT_EQ(b.bufferCounter, r.bufferCounter);
    EXPECT_EQ(b.bufferSize, r.bufferSize);
    EXPECT_EQ(b.gcIntervalCounter, r.gcIntervalCounter);
    EXPECT_EQ(b.flushEstimateNs, r.flushEstimateNs);
    EXPECT_EQ(b.gcEstimateNs, r.gcEstimateNs);
    // The re-read log classifies identically.
    EXPECT_EQ(back.causeOf(0), log.causeOf(0));
}

TEST(AuditLog, ReadJsonlRejectsMalformedLineWithLineNumber)
{
    std::istringstream is("\n{\"submit_ns\":1,\"oops\":2}\n");
    AuditLog log;
    size_t errorLine = 0;
    EXPECT_FALSE(AuditLog::readJsonl(is, &log, &errorLine));
    EXPECT_EQ(errorLine, 2u); // blank lines are skipped but counted
    EXPECT_EQ(log.size(), 0u);
}

} // namespace
} // namespace ssdcheck::obs
