/** @file Unit tests for nand/nand_chip.h (NAND physical constraints). */
#include <gtest/gtest.h>

#include "nand/nand_chip.h"

namespace ssdcheck::nand {
namespace {

NandGeometry
smallGeo()
{
    NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.diesPerChip = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 4;
    g.pagesPerBlock = 8;
    return g;
}

TEST(NandChipTest, ProgramThenReadReturnsPayload)
{
    NandChip chip(smallGeo(), NandTiming{});
    chip.programPage(0, 0, 0, 0xdeadbeef);
    uint64_t payload = 0;
    chip.readPage(0, 0, 0, &payload);
    EXPECT_EQ(payload, 0xdeadbeefULL);
}

TEST(NandChipTest, SequentialProgrammingAdvancesWritePointer)
{
    NandChip chip(smallGeo(), NandTiming{});
    EXPECT_EQ(chip.writePointer(1, 2), 0u);
    chip.programPage(1, 2, 0, 1);
    chip.programPage(1, 2, 1, 2);
    EXPECT_EQ(chip.writePointer(1, 2), 2u);
    EXPECT_TRUE(chip.isProgrammed(1, 2, 0));
    EXPECT_TRUE(chip.isProgrammed(1, 2, 1));
    EXPECT_FALSE(chip.isProgrammed(1, 2, 2));
}

TEST(NandChipTest, EraseResetsBlock)
{
    NandChip chip(smallGeo(), NandTiming{});
    chip.programPage(0, 1, 0, 7);
    chip.programPage(0, 1, 1, 8);
    EXPECT_EQ(chip.eraseCount(0, 1), 0u);
    chip.eraseBlock(0, 1);
    EXPECT_EQ(chip.writePointer(0, 1), 0u);
    EXPECT_EQ(chip.eraseCount(0, 1), 1u);
    EXPECT_FALSE(chip.isProgrammed(0, 1, 0));
    // Erased pages read back the erased payload (once reprogrammed,
    // page 0 is readable again).
    chip.programPage(0, 1, 0, 99);
    uint64_t payload = 0;
    chip.readPage(0, 1, 0, &payload);
    EXPECT_EQ(payload, 99u);
}

TEST(NandChipTest, EraseBeforeWriteEnablesReprogramming)
{
    NandChip chip(smallGeo(), NandTiming{});
    const auto g = smallGeo();
    // Fill the block completely, erase, fill again.
    for (uint32_t cycle = 0; cycle < 3; ++cycle) {
        for (uint32_t p = 0; p < g.pagesPerBlock; ++p)
            chip.programPage(0, 0, p, cycle * 100 + p);
        chip.eraseBlock(0, 0);
    }
    EXPECT_EQ(chip.eraseCount(0, 0), 3u);
}

TEST(NandChipTest, OperationsReturnConfiguredLatencies)
{
    NandTiming t;
    t.readLatency = 11;
    t.programLatency = 22;
    t.eraseLatency = 33;
    NandChip chip(smallGeo(), t);
    EXPECT_EQ(chip.programPage(0, 0, 0, 1), 22);
    EXPECT_EQ(chip.readPage(0, 0, 0), 11);
    EXPECT_EQ(chip.eraseBlock(0, 0), 33);
}

TEST(NandChipTest, BlocksAreIndependent)
{
    NandChip chip(smallGeo(), NandTiming{});
    chip.programPage(0, 0, 0, 1);
    chip.programPage(1, 0, 0, 2);
    chip.eraseBlock(0, 0);
    // Plane 1 block 0 untouched by plane 0 erase.
    EXPECT_TRUE(chip.isProgrammed(1, 0, 0));
    uint64_t payload = 0;
    chip.readPage(1, 0, 0, &payload);
    EXPECT_EQ(payload, 2u);
}

#ifndef NDEBUG
TEST(NandChipDeathTest, NonSequentialProgramAsserts)
{
    NandChip chip(smallGeo(), NandTiming{});
    EXPECT_DEATH(chip.programPage(0, 0, 3, 1), "sequential");
}

TEST(NandChipDeathTest, DoubleProgramAsserts)
{
    NandChip chip(smallGeo(), NandTiming{});
    chip.programPage(0, 0, 0, 1);
    EXPECT_DEATH(chip.programPage(0, 0, 0, 2), "sequential");
}

TEST(NandChipDeathTest, ReadingUnprogrammedPageAsserts)
{
    NandChip chip(smallGeo(), NandTiming{});
    EXPECT_DEATH(chip.readPage(0, 0, 0), "unprogrammed");
}
#endif

} // namespace
} // namespace ssdcheck::nand
