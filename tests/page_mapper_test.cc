/** @file Unit and property tests for ssd/page_mapper.h (the FTL). */
#include <gtest/gtest.h>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/page_mapper.h"

namespace ssdcheck::ssd {
namespace {

using core::Lpn;

nand::NandGeometry
smallGeo()
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g; // 256 physical pages, 32 blocks
}

class PageMapperTest : public ::testing::Test
{
  protected:
    PageMapperTest() : arr_(smallGeo(), nand::NandTiming{}), m_(arr_, 160) {}

    nand::NandArray arr_;
    PageMapper m_;
};

TEST_F(PageMapperTest, FreshMapperHasNoMappings)
{
    EXPECT_EQ(m_.totalValid(), 0u);
    EXPECT_EQ(m_.freeBlocks(), 32u);
    EXPECT_EQ(m_.lookup(Lpn{0}), nand::kInvalidPpn);
    uint64_t payload = 0;
    EXPECT_FALSE(m_.readPage(Lpn{0}, &payload));
    EXPECT_EQ(m_.checkConsistency(), "");
}

TEST_F(PageMapperTest, WriteThenReadRoundTrips)
{
    m_.writePage(Lpn{5}, 555);
    uint64_t payload = 0;
    ASSERT_TRUE(m_.readPage(Lpn{5}, &payload));
    EXPECT_EQ(payload, 555u);
    EXPECT_EQ(m_.totalValid(), 1u);
}

TEST_F(PageMapperTest, OverwriteInvalidatesOldPpn)
{
    m_.writePage(Lpn{5}, 1);
    const nand::Ppn first = m_.lookup(Lpn{5});
    m_.writePage(Lpn{5}, 2);
    const nand::Ppn second = m_.lookup(Lpn{5});
    EXPECT_NE(first, second);
    EXPECT_EQ(m_.lpnOfPpn(first), kInvalidLpn);
    EXPECT_EQ(m_.lpnOfPpn(second), Lpn{5});
    EXPECT_EQ(m_.totalValid(), 1u);
    uint64_t payload = 0;
    m_.readPage(Lpn{5}, &payload);
    EXPECT_EQ(payload, 2u);
}

TEST_F(PageMapperTest, AllocationFillsBlocksSequentially)
{
    const uint32_t ppb = smallGeo().pagesPerBlock;
    for (uint64_t lpn = 0; lpn < ppb; ++lpn)
        m_.writePage(Lpn{lpn}, lpn);
    // One block consumed from the free pool (host-open block full).
    EXPECT_EQ(m_.freeBlocks(), 31u);
    EXPECT_EQ(m_.blockValidCount(nand::Pbn{m_.lookup(Lpn{0}).value() / ppb}), ppb);
}

TEST_F(PageMapperTest, GreedyVictimPicksLeastValid)
{
    const uint32_t ppb = smallGeo().pagesPerBlock;
    // Fill two blocks: block A with lpns 0..7, block B with 8..15.
    for (uint64_t lpn = 0; lpn < 2 * ppb; ++lpn)
        m_.writePage(Lpn{lpn}, lpn);
    const nand::Pbn blockA{m_.lookup(Lpn{0}).value() / ppb};
    // Invalidate most of block A by overwriting its lpns.
    for (uint64_t lpn = 0; lpn < 6; ++lpn)
        m_.writePage(Lpn{lpn}, 100 + lpn);
    const nand::Pbn victim = m_.pickVictimGreedy();
    EXPECT_EQ(victim, blockA);
    EXPECT_EQ(m_.blockValidCount(blockA), 2u);
}

TEST_F(PageMapperTest, VictimSelectionIgnoresOpenAndFreeBlocks)
{
    // Only a partially-written (open) block exists: no victim.
    m_.writePage(Lpn{0}, 1);
    EXPECT_EQ(m_.pickVictimGreedy(), PageMapper::kNoVictim);
}

TEST_F(PageMapperTest, CollectBlockRelocatesValidPages)
{
    const uint32_t ppb = smallGeo().pagesPerBlock;
    for (uint64_t lpn = 0; lpn < 2 * ppb; ++lpn)
        m_.writePage(Lpn{lpn}, 1000 + lpn);
    for (uint64_t lpn = 0; lpn < 5; ++lpn)
        m_.writePage(Lpn{lpn}, 2000 + lpn);
    const nand::Pbn victim = m_.pickVictimGreedy();
    const uint64_t victimValid = m_.blockValidCount(victim);
    const size_t freeBefore = m_.freeBlocks();

    const uint64_t moved = m_.collectBlock(victim);
    EXPECT_EQ(moved, victimValid);
    EXPECT_GE(m_.freeBlocks(), freeBefore); // net-nonnegative here
    EXPECT_EQ(m_.blockValidCount(victim), 0u);
    EXPECT_EQ(m_.checkConsistency(), "");

    // Every lpn still readable with the right payload.
    for (uint64_t lpn = 0; lpn < 2 * ppb; ++lpn) {
        uint64_t payload = 0;
        ASSERT_TRUE(m_.readPage(Lpn{lpn}, &payload));
        EXPECT_EQ(payload, lpn < 5 ? 2000 + lpn : 1000 + lpn);
    }
}

TEST_F(PageMapperTest, TrimAllResetsEverything)
{
    for (uint64_t lpn = 0; lpn < 50; ++lpn)
        m_.writePage(Lpn{lpn}, lpn);
    m_.trimAll();
    EXPECT_EQ(m_.totalValid(), 0u);
    EXPECT_EQ(m_.freeBlocks(), 32u);
    EXPECT_EQ(m_.lookup(Lpn{0}), nand::kInvalidPpn);
    EXPECT_EQ(m_.checkConsistency(), "");
    // Usable again after trim.
    m_.writePage(Lpn{3}, 33);
    uint64_t payload = 0;
    EXPECT_TRUE(m_.readPage(Lpn{3}, &payload));
    EXPECT_EQ(payload, 33u);
}

/**
 * Property test: after thousands of random overwrites interleaved
 * with GC, the forward map, inverse map, block accounting and NAND
 * state all stay mutually consistent, and every logical page reads
 * back its newest payload.
 */
TEST(PageMapperPropertyTest, RandomOpsPreserveConsistencyAndData)
{
    nand::NandArray arr(smallGeo(), nand::NandTiming{});
    const uint64_t userPages = 160;
    PageMapper m(arr, userPages);
    sim::Rng rng(2024);
    std::vector<uint64_t> expected(userPages, ~0ULL);

    uint64_t stamp = 1;
    for (int op = 0; op < 8000; ++op) {
        // GC when the pool runs low, exactly like the volume does.
        while (m.freeBlocks() < 4) {
            const nand::Pbn victim = m.pickVictimGreedy();
            ASSERT_NE(victim, PageMapper::kNoVictim);
            m.collectBlock(victim);
        }
        const uint64_t lpn = rng.nextBelow(userPages);
        m.writePage(Lpn{lpn}, stamp);
        expected[lpn] = stamp;
        ++stamp;

        if (op % 997 == 0) {
            ASSERT_EQ(m.checkConsistency(), "") << "at op " << op;
        }
    }
    ASSERT_EQ(m.checkConsistency(), "");
    for (uint64_t lpn = 0; lpn < userPages; ++lpn) {
        uint64_t payload = 0;
        if (expected[lpn] == ~0ULL) {
            EXPECT_FALSE(m.readPage(Lpn{lpn}, &payload));
        } else {
            ASSERT_TRUE(m.readPage(Lpn{lpn}, &payload));
            EXPECT_EQ(payload, expected[lpn]) << "lpn " << lpn;
        }
    }
}

TEST_F(PageMapperTest, FullBlockStaysOpenUntilPointerMovesOn)
{
    const uint32_t ppb = smallGeo().pagesPerBlock;
    // Fill the host-open block exactly: it is fully programmed but the
    // open-block pointer has not moved past it yet, so it is neither a
    // candidate nor a victim.
    for (uint64_t lpn = 0; lpn < ppb; ++lpn)
        m_.writePage(Lpn{lpn}, lpn);
    const nand::Pbn full{m_.lookup(Lpn{0}).value() / ppb};
    EXPECT_EQ(m_.blockValidCount(full), ppb);
    EXPECT_FALSE(m_.isGcCandidate(full));
    EXPECT_EQ(m_.pickVictimGreedy(), PageMapper::kNoVictim);
    EXPECT_EQ(m_.checkConsistency(), "");

    // The next write replaces the open block; now (and only now) the
    // previous block closes and becomes the victim.
    m_.writePage(Lpn{ppb}, ppb);
    EXPECT_TRUE(m_.isGcCandidate(full));
    EXPECT_EQ(m_.pickVictimGreedy(), full);
    EXPECT_EQ(m_.checkConsistency(), "");
}

TEST_F(PageMapperTest, PartiallyWrittenBlocksAreNeverCandidates)
{
    const uint32_t ppb = smallGeo().pagesPerBlock;
    // Write 1.5 blocks: the first closes, the second stays open.
    for (uint64_t lpn = 0; lpn < ppb + ppb / 2; ++lpn)
        m_.writePage(Lpn{lpn}, lpn);
    const nand::Pbn closed{m_.lookup(Lpn{0}).value() / ppb};
    const nand::Pbn open{m_.lookup(Lpn{ppb}).value() / ppb};
    EXPECT_TRUE(m_.isGcCandidate(closed));
    EXPECT_FALSE(m_.isGcCandidate(open));
    EXPECT_EQ(m_.pickVictimGreedy(), closed);
}

/**
 * Cross-check the incremental bucket structure against a straight
 * reference scan over isGcCandidate()/blockValidCount() through
 * thousands of random overwrites, GCs and a trim: both must name the
 * same victim (fewest valid pages, lowest block number on ties).
 */
TEST(PageMapperPropertyTest, VictimMatchesReferenceScan)
{
    nand::NandArray arr(smallGeo(), nand::NandTiming{});
    const uint64_t userPages = 160;
    const uint64_t totalBlocks = smallGeo().totalBlocks();
    PageMapper m(arr, userPages);
    sim::Rng rng(777);

    auto referenceVictim = [&]() {
        nand::Pbn best = PageMapper::kNoVictim;
        uint32_t bestValid = ~0U;
        for (uint64_t raw = 0; raw < totalBlocks; ++raw) {
            const nand::Pbn b{raw};
            if (!m.isGcCandidate(b))
                continue;
            if (m.blockValidCount(b) < bestValid) {
                bestValid = m.blockValidCount(b);
                best = b;
            }
        }
        return best;
    };

    for (int op = 0; op < 6000; ++op) {
        while (m.freeBlocks() < 4) {
            const nand::Pbn victim = m.pickVictimGreedy();
            ASSERT_EQ(victim, referenceVictim()) << "at op " << op;
            ASSERT_NE(victim, PageMapper::kNoVictim);
            m.collectBlock(victim);
        }
        m.writePage(Lpn{rng.nextBelow(userPages)}, op);
        if (op % 61 == 0) {
            ASSERT_EQ(m.pickVictimGreedy(), referenceVictim())
                << "at op " << op;
        }
        if (op == 3000) {
            m.trimAll();
            ASSERT_EQ(m.pickVictimGreedy(), PageMapper::kNoVictim);
        }
        if (op % 997 == 0) {
            ASSERT_EQ(m.checkConsistency(), "") << "at op " << op;
        }
    }
    ASSERT_EQ(m.checkConsistency(), "");
}

/**
 * Bit-equivalence of the packed SoA state against a naive reference
 * mapper: rebuild the validity bitmap words, per-block valid counters
 * and totalValid from scratch out of the plain forward map (one
 * lookup() per logical page — the representation the pre-SoA mapper
 * kept) at checkpoints of a randomized write/trim/GC schedule, and
 * require the maintained SoA state to match word for word.
 */
TEST(PageMapperPropertyTest, SoaStateMatchesNaiveReference)
{
    nand::NandArray arr(smallGeo(), nand::NandTiming{});
    const uint64_t userPages = 160;
    const uint32_t ppb = smallGeo().pagesPerBlock;
    PageMapper m(arr, userPages);
    sim::Rng rng(424242);

    const auto naiveCheck = [&]() {
        std::vector<uint64_t> words(m.validWords(), 0);
        std::vector<uint32_t> counts(m.totalBlocks(), 0);
        uint64_t valid = 0;
        for (uint64_t lpn = 0; lpn < userPages; ++lpn) {
            const nand::Ppn ppn = m.lookup(Lpn{lpn});
            if (ppn == nand::kInvalidPpn)
                continue;
            ++valid;
            words[ppn.value() >> 6] |= 1ULL << (ppn.value() & 63);
            ++counts[ppn.value() / ppb];
            EXPECT_TRUE(m.isPpnValid(ppn));
            EXPECT_EQ(m.lpnOfPpn(ppn), Lpn{lpn});
        }
        EXPECT_EQ(valid, m.totalValid());
        for (size_t w = 0; w < words.size(); ++w)
            ASSERT_EQ(words[w], m.validWord(w)) << "word " << w;
        for (uint64_t b = 0; b < m.totalBlocks(); ++b)
            ASSERT_EQ(counts[b], m.blockValidCount(nand::Pbn{b}))
                << "block " << b;
    };

    for (int op = 0; op < 5000; ++op) {
        while (m.freeBlocks() < 4) {
            const nand::Pbn victim = m.pickVictimGreedy();
            ASSERT_NE(victim, PageMapper::kNoVictim);
            m.collectBlock(victim);
        }
        m.writePage(Lpn{rng.nextBelow(userPages)}, op);
        if (op % 193 == 0)
            naiveCheck();
        if (op == 2500) {
            m.trimAll();
            naiveCheck();
        }
    }
    naiveCheck();
    ASSERT_EQ(m.checkConsistency(), "");
}

/** Write amplification sanity: uniform random overwrites move pages. */
TEST(PageMapperPropertyTest, GcMovesFewerPagesWithSelfInvalidation)
{
    nand::NandArray arr(smallGeo(), nand::NandTiming{});
    PageMapper m(arr, 160);
    // Self-invalidation: hammer one lpn; victims should be empty.
    uint64_t movedTotal = 0;
    for (int op = 0; op < 4000; ++op) {
        while (m.freeBlocks() < 4) {
            const nand::Pbn victim = m.pickVictimGreedy();
            ASSERT_NE(victim, PageMapper::kNoVictim);
            movedTotal += m.collectBlock(victim);
        }
        m.writePage(Lpn{7}, op);
    }
    // Nearly all victim blocks were fully invalidated.
    EXPECT_LT(movedTotal, 50u);
}

} // namespace
} // namespace ssdcheck::ssd
