/** @file Unit tests for usecases/pas.h (prediction-aware scheduling). */
#include <gtest/gtest.h>

#include "core/ssdcheck.h"
#include "ssd/ssd_device.h"
#include "usecases/pas.h"

namespace ssdcheck::usecases {
namespace {

using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::kTimeZero;
using sim::microseconds;
using sim::milliseconds;

core::FeatureSet
smallFeatures()
{
    core::FeatureSet fs;
    fs.bufferBytes = 4 * 4096;
    fs.bufferType = core::BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(2);
    return fs;
}

QueuedRequest
qr(const blockdev::IoRequest &req, uint64_t seq)
{
    QueuedRequest q;
    q.req = req;
    q.arrival = sim::SimTime{static_cast<int64_t>(seq)};
    q.seq = seq;
    return q;
}

TEST(PasSchedulerTest, PureClassesStayFifo)
{
    core::SsdCheck check(smallFeatures());
    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(0), 0));
    s.enqueue(qr(makeWrite4k(1), 1));
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 0u);
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 1u);
}

TEST(PasSchedulerTest, ReadJumpsFlushTriggeringWrites)
{
    // Fig. 10: queue W1 W2 R1, where W2 would fill the buffer.
    core::SsdCheck check(smallFeatures());
    // Model state: 2 of 4 pages already buffered.
    check.onSubmit(makeWrite4k(50), kTimeZero);
    check.onSubmit(makeWrite4k(51), kTimeZero);

    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(1), 0));
    s.enqueue(qr(makeWrite4k(2), 1)); // this one would trigger the flush
    s.enqueue(qr(makeRead4k(100), 2));
    // The oldest read, issued in original order, lands after the
    // flush: PAS pulls it ahead.
    const QueuedRequest first = s.dequeue(kTimeZero + microseconds(10));
    EXPECT_TRUE(first.req.isRead());
    // Remaining writes keep their order.
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 0u);
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 1u);
}

TEST(PasSchedulerTest, NoReorderWhenNoFlushAhead)
{
    core::SsdCheck check(smallFeatures());
    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(1), 0)); // buffer far from full
    s.enqueue(qr(makeRead4k(100), 1));
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 0u); // oldest first
}

TEST(PasSchedulerTest, FrontReadDispatchesDirectly)
{
    core::SsdCheck check(smallFeatures());
    PasScheduler s(check);
    s.enqueue(qr(makeRead4k(9), 0));
    s.enqueue(qr(makeWrite4k(1), 1));
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 0u);
}

TEST(PasSchedulerTest, BusyEbtAlsoPullsReadForward)
{
    core::SsdCheck check(smallFeatures());
    // Force a modeled flush: fill the 4-page buffer.
    for (int i = 0; i < 4; ++i)
        check.onSubmit(makeWrite4k(i), kTimeZero);
    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(10), 0));
    s.enqueue(qr(makeRead4k(100), 1));
    // EBT is high: the read would be slow; PAS pulls it ahead.
    EXPECT_TRUE(s.dequeue(kTimeZero + microseconds(5)).req.isRead());
}

ssd::SsdConfig
idealCfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 8192;
    c.bufferBytes = 4 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(IdealPasSchedulerTest, UsesGroundTruthBufferFill)
{
    ssd::SsdDevice dev(idealCfg());
    // Fill 2 of 4 buffer slots on the real device.
    sim::SimTime t;
    t = dev.submit(makeWrite4k(50), t).completeTime;
    t = dev.submit(makeWrite4k(51), t).completeTime;

    IdealPasScheduler s(dev);
    s.enqueue(qr(makeWrite4k(1), 0));
    s.enqueue(qr(makeWrite4k(2), 1)); // would fill the device buffer
    s.enqueue(qr(makeRead4k(100), 2));
    EXPECT_TRUE(s.dequeue(t).req.isRead());
}

TEST(IdealPasSchedulerTest, UsesGroundTruthBusyNand)
{
    ssd::SsdDevice dev(idealCfg());
    sim::SimTime t;
    for (int i = 0; i < 4; ++i)
        t = dev.submit(makeWrite4k(i), t).completeTime; // flush running
    IdealPasScheduler s(dev);
    s.enqueue(qr(makeWrite4k(10), 0));
    s.enqueue(qr(makeRead4k(100), 1));
    EXPECT_TRUE(s.dequeue(t).req.isRead());
    // Once the flush is over, order is preserved.
    IdealPasScheduler s2(dev);
    s2.enqueue(qr(makeWrite4k(11), 0));
    s2.enqueue(qr(makeRead4k(101), 1));
    const sim::SimTime idle = dev.volume(0).nandBusyUntil() + milliseconds(1);
    EXPECT_TRUE(s2.dequeue(idle).req.isWrite());
}

TEST(PasSchedulerTest, BarrierBlocksReordering)
{
    // Same Fig.-10 situation as ReadJumpsFlushTriggeringWrites, but
    // the second write is a barrier: order must be preserved
    // (paper §IV-B: PAS enforces order when strictness is required).
    core::SsdCheck check(smallFeatures());
    check.onSubmit(makeWrite4k(50), kTimeZero);
    check.onSubmit(makeWrite4k(51), kTimeZero);

    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(1), 0));
    auto barrier = qr(makeWrite4k(2), 1);
    barrier.barrier = true;
    s.enqueue(barrier);
    s.enqueue(qr(makeRead4k(100), 2));
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 0u);
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 1u);
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 2u);
}

TEST(PasSchedulerTest, ReadBeforeBarrierStillJumps)
{
    core::SsdCheck check(smallFeatures());
    check.onSubmit(makeWrite4k(50), kTimeZero);
    check.onSubmit(makeWrite4k(51), kTimeZero);

    PasScheduler s(check);
    s.enqueue(qr(makeWrite4k(1), 0));
    s.enqueue(qr(makeWrite4k(2), 1)); // would trigger the flush
    s.enqueue(qr(makeRead4k(100), 2));
    auto barrier = qr(makeWrite4k(3), 3);
    barrier.barrier = true;
    s.enqueue(barrier);
    // The read sits before the barrier: reordering within the window
    // is still allowed.
    EXPECT_TRUE(s.dequeue(kTimeZero + microseconds(10)).req.isRead());
}

TEST(IdealPasSchedulerTest, BarrierBlocksReordering)
{
    ssd::SsdDevice dev(idealCfg());
    sim::SimTime t;
    t = dev.submit(makeWrite4k(50), t).completeTime;
    t = dev.submit(makeWrite4k(51), t).completeTime;
    IdealPasScheduler s(dev);
    s.enqueue(qr(makeWrite4k(1), 0));
    auto barrier = qr(makeWrite4k(2), 1);
    barrier.barrier = true;
    s.enqueue(barrier);
    s.enqueue(qr(makeRead4k(100), 2));
    EXPECT_EQ(s.dequeue(t).seq, 0u);
    EXPECT_EQ(s.dequeue(t).seq, 1u);
}

TEST(PasSchedulerTest, SchedulerNames)
{
    core::SsdCheck check(smallFeatures());
    EXPECT_EQ(PasScheduler(check).name(), "pas");
    ssd::SsdDevice dev(idealCfg());
    EXPECT_EQ(IdealPasScheduler(dev).name(), "ideal");
}

} // namespace
} // namespace ssdcheck::usecases
