/** @file Unit tests for the core/ssdcheck.h facade. */
#include <gtest/gtest.h>

#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::core {
namespace {

using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::microseconds;
using sim::milliseconds;

FeatureSet
usableFeatures()
{
    FeatureSet fs;
    fs.bufferBytes = 16 * 4096;
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(1);
    return fs;
}

TEST(SsdCheckFacadeTest, UnusableFeaturesDisablePrediction)
{
    SsdCheck check(FeatureSet{});
    EXPECT_FALSE(check.enabled());
    EXPECT_EQ(check.engine(), nullptr);
    // Predictions are harmless NL.
    const Prediction p = check.predict(makeRead4k(1), sim::kTimeZero);
    EXPECT_FALSE(p.hl);
    // Completions still classify correctly.
    EXPECT_TRUE(check.onComplete(makeRead4k(1), p, sim::kTimeZero,
                                 sim::kTimeZero + milliseconds(5)));
    EXPECT_FALSE(check.onComplete(makeRead4k(1), p, sim::kTimeZero,
                                  sim::kTimeZero + microseconds(100)));
}

TEST(SsdCheckFacadeTest, UsableFeaturesEnablePrediction)
{
    SsdCheck check(usableFeatures());
    EXPECT_TRUE(check.enabled());
    ASSERT_NE(check.engine(), nullptr);
    EXPECT_EQ(check.engine()->numVolumes(), 1u);
}

TEST(SsdCheckFacadeTest, GcThresholdAdaptsToObservedFlushOverhead)
{
    // Default gc threshold is 3ms; with a diagnosed 2.5ms flush
    // overhead it must scale to 3x that so long flushes are not
    // mistaken for GC.
    FeatureSet fs = usableFeatures();
    fs.observedFlushOverheadNs = sim::microseconds(2500);
    SsdCheck check(fs);
    EXPECT_EQ(check.monitor().thresholds().gc, 3 * sim::microseconds(2500));

    // A small flush overhead keeps the configured default.
    FeatureSet fs2 = usableFeatures();
    fs2.observedFlushOverheadNs = sim::microseconds(400);
    SsdCheck check2(fs2);
    EXPECT_EQ(check2.monitor().thresholds().gc, milliseconds(3));
}

TEST(SsdCheckFacadeTest, SeededFlushOverheadReachesCalibrator)
{
    FeatureSet fs = usableFeatures();
    fs.observedFlushOverheadNs = milliseconds(7);
    SsdCheck check(fs);
    EXPECT_EQ(check.calibrator().flushOverhead(), milliseconds(7));
}

TEST(SsdCheckFacadeTest, ClassifyActualUsesThresholds)
{
    SsdCheck check(usableFeatures());
    EXPECT_FALSE(check.classifyActual(makeRead4k(0), microseconds(250)));
    EXPECT_TRUE(check.classifyActual(makeRead4k(0), microseconds(251)));
}

TEST(SsdCheckFacadeTest, StaticDiagnoseRunsEndToEnd)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    const FeatureSet fs = SsdCheck::diagnose(dev);
    EXPECT_TRUE(fs.bufferModelUsable());
    EXPECT_EQ(fs.bufferBytes, 248u * 1024);
}

TEST(SsdCheckFacadeTest, PredictIsSideEffectFree)
{
    SsdCheck check(usableFeatures());
    for (int i = 0; i < 100; ++i)
        check.predict(makeWrite4k(i), sim::SimTime{i});
    // No submissions happened: the buffer counter is untouched.
    EXPECT_EQ(check.engine()->wbModel(0).counter(), 0u);
}

TEST(SsdCheckFacadeTest, AutoDisableAfterSustainedFailure)
{
    RuntimeConfig rc;
    rc.calibrator.disableAccuracy = 0.5;
    rc.calibrator.disableAfter = 200;
    rc.calibrator.minHlEvents = 10;
    rc.accuracyWindow = 100;
    SsdCheck check(usableFeatures(), rc);
    // Stream of HL completions the model never predicted.
    Prediction nl;
    sim::SimTime t;
    for (int i = 0; i < 600 && check.enabled(); ++i) {
        t += milliseconds(1);
        check.onComplete(makeRead4k(5), nl, t, t + microseconds(800));
    }
    EXPECT_FALSE(check.enabled());
    // Harmlessly off: everything predicted NL now.
    EXPECT_FALSE(check.predict(makeRead4k(5), t).hl);
}

} // namespace
} // namespace ssdcheck::core
