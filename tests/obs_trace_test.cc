/**
 * @file
 * Unit tests of the TraceRecorder: event capture, Chrome trace-event
 * JSON shape, arg capping, and byte-identical serialization (the
 * recorder's determinism contract).
 */
#include <string>

#include <gtest/gtest.h>

#include "obs/trace_recorder.h"
#include "sim/sim_time.h"

namespace ssdcheck::obs {
namespace {

TEST(TraceRecorder, RecordsCompleteInstantAndCounterEvents)
{
    TraceRecorder tr;
    EXPECT_EQ(tr.events(), 0u);
    tr.complete("dev", "dev.request", {kDevicePid, kDeviceInterfaceTid},
                sim::kTimeZero + sim::microseconds(1) + 500, sim::microseconds(2),
                {{"lba", 42}, {"write", 1}});
    tr.instant("wb", "wb.enqueue", {kDevicePid, 0},
               sim::kTimeZero + sim::microseconds(3),
               {{"fill", 7}});
    tr.counter("queue", {kHostPid, kHostWorkloadTid},
               sim::kTimeZero + sim::microseconds(4),
               "depth", 3);
    EXPECT_EQ(tr.events(), 3u);

    const std::string json = tr.toChromeJson();
    // Object-format envelope.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // Complete event: fixed-point microsecond ts/dur, track, args.
    EXPECT_NE(json.find("{\"name\":\"dev.request\",\"cat\":\"dev\","
                        "\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000,"
                        "\"pid\":1,\"tid\":65535,"
                        "\"args\":{\"lba\":42,\"write\":1}}"),
              std::string::npos)
        << json;
    // Instant event carries thread scope.
    EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":3.000,\"pid\":1,\"tid\":0,"
                        "\"s\":\"t\",\"args\":{\"fill\":7}"),
              std::string::npos)
        << json;
    // Counter event.
    EXPECT_NE(json.find("{\"name\":\"queue\",\"cat\":\"counter\","
                        "\"ph\":\"C\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"args\":{\"depth\":3}"), std::string::npos);
}

TEST(TraceRecorder, MetadataNamesSerializeFirst)
{
    TraceRecorder tr;
    tr.complete("a", "span", {0, 0}, sim::kTimeZero, 1);
    tr.setProcessName(kHostPid, "host");
    tr.setThreadName({kHostPid, kHostModelTid}, "ssdcheck-model");
    const std::string json = tr.toChromeJson();
    const size_t procPos = json.find(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"host\"}}");
    const size_t threadPos = json.find(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,"
        "\"args\":{\"name\":\"ssdcheck-model\"}}");
    const size_t spanPos = json.find("\"name\":\"span\"");
    ASSERT_NE(procPos, std::string::npos) << json;
    ASSERT_NE(threadPos, std::string::npos) << json;
    ASSERT_NE(spanPos, std::string::npos);
    // Metadata renders before every data event regardless of the
    // order calls were made in.
    EXPECT_LT(procPos, spanPos);
    EXPECT_LT(threadPos, spanPos);
    // Metadata is not counted as an event.
    EXPECT_EQ(tr.events(), 1u);
}

TEST(TraceRecorder, ArgsCappedAtKMaxArgs)
{
    TraceRecorder tr;
    tr.complete("c", "busy", {0, 0}, sim::kTimeZero, 1,
                {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
    const std::string json = tr.toChromeJson();
    EXPECT_NE(json.find("\"d\":4"), std::string::npos);
    EXPECT_EQ(json.find("\"e\":5"), std::string::npos) << json;
}

TEST(TraceRecorder, NegativeTimestampsStayFixedPoint)
{
    // Negative sim offsets never happen in real runs, but the writer
    // must not fall back to float formatting for them either.
    TraceRecorder tr;
    tr.instant("t", "early", {0, 0}, sim::SimTime{-1500});
    EXPECT_NE(tr.toChromeJson().find("\"ts\":-1.500"), std::string::npos);
}

TEST(TraceRecorder, SerializationIsByteStable)
{
    const auto record = [](TraceRecorder &tr) {
        tr.setProcessName(kDevicePid, "ssd A");
        tr.setThreadName({kDevicePid, 0}, "volume 0");
        for (int i = 0; i < 100; ++i) {
            tr.complete("nand", "nand.read", {kDevicePid, 0},
                        sim::kTimeZero + sim::microseconds(i),
                        sim::microseconds(1) + i,
                        {{"lpn", i}, {"wait_ns", 10 * i}});
            if (i % 7 == 0)
                tr.instant("gc", "gc.trigger", {kDevicePid, 0},
                           sim::kTimeZero + sim::microseconds(i),
                           {{"free_blocks", i}});
        }
    };
    TraceRecorder a;
    TraceRecorder b;
    record(a);
    record(b);
    EXPECT_EQ(a.toChromeJson(), b.toChromeJson());
    // Serializing the same recorder twice is also stable.
    EXPECT_EQ(a.toChromeJson(), a.toChromeJson());
}

TEST(TraceRecorder, ClearDropsEventsAndMetadata)
{
    TraceRecorder tr;
    tr.setProcessName(0, "host");
    tr.instant("x", "y", {0, 0}, sim::kTimeZero);
    tr.clear();
    EXPECT_EQ(tr.events(), 0u);
    EXPECT_EQ(tr.toChromeJson().find("host"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::obs
