/** @file Unit tests for stats/timeline.h. */
#include <gtest/gtest.h>

#include "sim/sim_time.h"
#include "stats/timeline.h"

namespace ssdcheck::stats {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(TimelineTest, BucketsByWindow)
{
    Timeline t(milliseconds(100));
    t.add(milliseconds(10), 1000);
    t.add(milliseconds(90), 1000);
    t.add(milliseconds(150), 500);
    EXPECT_EQ(t.numWindows(), 2u);
    EXPECT_EQ(t.totalBytes(), 2500u);
    EXPECT_EQ(t.totalIos(), 3u);
}

TEST(TimelineTest, MbpsComputation)
{
    Timeline t(seconds(1));
    t.add(milliseconds(500), 10 * 1000 * 1000); // 10 MB in a 1s window
    EXPECT_DOUBLE_EQ(t.mbps(0), 10.0);
    EXPECT_DOUBLE_EQ(t.iops(0), 1.0);
}

TEST(TimelineTest, SparseWindowsAreZero)
{
    Timeline t(milliseconds(10));
    t.add(milliseconds(5), 100);
    t.add(milliseconds(95), 100);
    ASSERT_EQ(t.numWindows(), 10u);
    EXPECT_GT(t.mbps(0), 0.0);
    EXPECT_EQ(t.mbps(5), 0.0);
    EXPECT_GT(t.mbps(9), 0.0);
}

TEST(TimelineTest, MeanMbpsAveragesWindows)
{
    Timeline t(seconds(1));
    t.add(milliseconds(100), 2 * 1000 * 1000);
    t.add(milliseconds(1100), 4 * 1000 * 1000);
    EXPECT_DOUBLE_EQ(t.meanMbps(), 3.0);
}

TEST(TimelineTest, CvZeroForConstantThroughput)
{
    Timeline t(seconds(1));
    for (int w = 0; w < 5; ++w)
        t.add(seconds(w) + milliseconds(1), 1000000);
    EXPECT_NEAR(t.mbpsCv(), 0.0, 1e-12);
}

TEST(TimelineTest, CvPositiveForFluctuatingThroughput)
{
    Timeline t(seconds(1));
    t.add(milliseconds(1), 10000000);
    t.add(seconds(1) + milliseconds(1), 1000000);
    t.add(seconds(2) + milliseconds(1), 10000000);
    EXPECT_GT(t.mbpsCv(), 0.5);
}

TEST(TimelineTest, EmptyTimelineSafe)
{
    Timeline t(seconds(1));
    EXPECT_EQ(t.numWindows(), 0u);
    EXPECT_DOUBLE_EQ(t.meanMbps(), 0.0);
    EXPECT_DOUBLE_EQ(t.mbpsCv(), 0.0);
}

} // namespace
} // namespace ssdcheck::stats
