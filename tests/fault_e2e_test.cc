/**
 * @file End-to-end fault-resilience tests (the PR's acceptance
 * criteria):
 *
 *  1. Transient read errors are retried by the host's ResilientDevice
 *     and their tainted completions never pollute the calibrator's
 *     EWMA estimates.
 *  2. Grown bad blocks (program/erase failures) measurably increase
 *     GC frequency on the same workload at the same seed.
 *  3. A mid-run firmware-drift event degrades rolling HL accuracy and
 *     the calibrator responds through the existing rolling-accuracy
 *     machinery — with predict() returning well-formed NL answers
 *     throughout (no crash, no hang, no poisoned estimate).
 */
#include <gtest/gtest.h>

#include "blockdev/resilient_device.h"
#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/runner.h"
#include "workload/synthetic.h"

namespace ssdcheck {
namespace {

using blockdev::IoStatus;
using blockdev::makeRead4k;
using blockdev::ResilientDevice;
using core::FeatureSet;
using core::Prediction;
using core::SsdCheck;
using sim::microseconds;
using sim::milliseconds;

/** Minimal usable feature set (mirrors ssdcheck_facade_test). */
FeatureSet
usableFeatures()
{
    FeatureSet fs;
    fs.bufferBytes = 16 * 4096;
    fs.bufferType = core::BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(1);
    return fs;
}

/** Small single-seed device config for fault experiments. */
ssd::SsdConfig
e2eCfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 16 * 1024;
    c.volumeBits = {10};
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.opRatio = 0.3;
    c.gcLowBlocks = 3;
    c.gcHighBlocks = 6;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

// ---------------------------------------------------------------------
// Criterion 1: retried reads recover and stay out of the EWMAs.
// ---------------------------------------------------------------------

TEST(FaultE2eTest, FailedCompletionsNeverTouchCalibratorEwmas)
{
    // Unit-level proof on the facade: a MediaError completion and a
    // host-retried completion both carry retry-loop latency; neither
    // may move any estimate.
    SsdCheck check(usableFeatures());
    const sim::SimDuration readBefore = check.calibrator().readService();
    const sim::SimDuration flushBefore = check.calibrator().flushOverhead();

    const auto req = makeRead4k(1);
    const Prediction pred = check.predict(req, sim::kTimeZero);
    // Failed completion with a 50ms retry-loop latency.
    EXPECT_TRUE(check.onComplete(req, pred, sim::kTimeZero,
                                 sim::kTimeZero + milliseconds(50),
                                 IoStatus::MediaError, 1));
    // Recovered-after-retries completion (Ok but attempts > 1).
    EXPECT_TRUE(check.onComplete(req, pred, sim::kTimeZero,
                                 sim::kTimeZero + milliseconds(80),
                                 IoStatus::Ok, 3));
    EXPECT_EQ(check.calibrator().readService(), readBefore);
    EXPECT_EQ(check.calibrator().flushOverhead(), flushBefore);

    // A clean completion still calibrates as before.
    check.onComplete(req, pred, sim::kTimeZero,
                     sim::kTimeZero + microseconds(120), IoStatus::Ok, 1);
    EXPECT_NE(check.calibrator().readService(), readBefore);
}

TEST(FaultE2eTest, TransientReadErrorsRetriedAndExcluded)
{
    // 30% of reads complete as MediaError; the resilient path retries
    // (each retry redraws, so most requests recover).
    ssd::SsdConfig cfg = e2eCfg();
    cfg.faults.name = "flaky";
    cfg.faults.readUncProbability = 0.3;
    cfg.faults.readUncHardFraction = 1.0;
    ssd::SsdDevice dev(cfg);
    dev.precondition();
    ResilientDevice rdev(dev);

    ssd::SsdDevice cleanDev(e2eCfg());
    cleanDev.precondition();

    SsdCheck faulty(usableFeatures());
    SsdCheck clean(usableFeatures());

    sim::SimTime t;
    uint64_t taintedSeen = 0;
    for (uint64_t i = 0; i < 4000; ++i) {
        const auto req = makeRead4k((i * 37) % cfg.userCapacityPages);
        const Prediction pf = faulty.predict(req, t);
        faulty.onSubmit(req, t);
        const auto res = rdev.submit(req, t);
        faulty.onComplete(req, pf, res);
        if (!res.ok() || res.attempts > 1)
            ++taintedSeen;

        const Prediction pc = clean.predict(req, t);
        clean.onSubmit(req, t);
        clean.onComplete(req, pc, cleanDev.submit(req, t));
        t = res.completeTime + microseconds(10);
    }

    // The host actually retried and mostly recovered.
    EXPECT_GT(rdev.counters().mediaErrors, 100u);
    EXPECT_GT(rdev.counters().retries, 100u);
    EXPECT_GT(rdev.counters().recovered, 100u);
    EXPECT_GT(taintedSeen, 100u);

    // Tainted completions carry retry latency ~350us+backoff each; if
    // they leaked into the EWMA the read-service estimate would blow
    // up. It must stay in the same band as on a clean device.
    const double faultyEst =
        static_cast<double>(faulty.calibrator().readService());
    const double cleanEst =
        static_cast<double>(clean.calibrator().readService());
    EXPECT_LT(faultyEst, cleanEst + static_cast<double>(microseconds(40)));
    // And prediction stays alive and well-formed.
    EXPECT_TRUE(faulty.enabled());
    const Prediction p = faulty.predict(makeRead4k(0), t);
    EXPECT_GE(p.eet, 0);
}

// ---------------------------------------------------------------------
// Criterion 2: grown bad blocks raise GC pressure.
// ---------------------------------------------------------------------

TEST(FaultE2eTest, GrownBadBlocksIncreaseGcFrequency)
{
    const auto trace =
        workload::buildRandomWriteTrace(40000, 16 * 1024, 11);

    auto runWith = [&](double eraseFailP, double programFailP,
                       uint64_t *retired) {
        ssd::SsdConfig cfg = e2eCfg();
        if (eraseFailP > 0 || programFailP > 0) {
            cfg.faults.name = "wearout";
            cfg.faults.eraseFailProbability = eraseFailP;
            cfg.faults.programFailProbability = programFailP;
        }
        ssd::SsdDevice dev(cfg);
        dev.precondition();
        usecases::runClosedLoop(dev, trace, 1, 0, sim::kTimeZero);
        if (retired != nullptr)
            *retired = dev.faultCounters().blocksRetired;
        return dev.totalCounters().gcInvocations;
    };

    uint64_t retired = 0;
    const uint64_t gcClean = runWith(0.0, 0.0, nullptr);
    const uint64_t gcWorn = runWith(0.25, 0.05, &retired);
    EXPECT_GT(retired, 0u);
    EXPECT_GT(gcClean, 0u);
    // Retired blocks shrink effective overprovisioning, so the same
    // write stream needs measurably more GC invocations.
    EXPECT_GT(gcWorn, gcClean + gcClean / 20); // >5% more
}

// ---------------------------------------------------------------------
// Criterion 3: firmware drift degrades accuracy; calibrator responds.
// ---------------------------------------------------------------------

TEST(FaultE2eTest, FirmwareDriftDegradesAccuracyAndCalibratorResponds)
{
    // Learn how many requests diagnosis consumes on this config so the
    // drift point can be placed after diagnosis + phase one.
    ssd::SsdDevice probe(ssd::makePreset(ssd::SsdModel::A));
    core::DiagnosisRunner probeRunner(probe, core::DiagnosisConfig{});
    probeRunner.extractFeatures();
    const uint64_t diagRequests = probe.requestsServed();

    const uint64_t phaseRequests = 30000;
    ssd::SsdConfig cfg = ssd::makePreset(ssd::SsdModel::A);
    cfg.faults.name = "drift";
    cfg.faults.driftAfterRequests = diagRequests + phaseRequests + 100;
    cfg.faults.driftKind = ssd::DriftKind::ShrinkBuffer;
    cfg.faults.driftBufferFactor = 0.25;
    ssd::SsdDevice dev(cfg);

    core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    ASSERT_TRUE(fs.bufferModelUsable());
    SsdCheck check(fs);

    const auto tracePre = workload::buildRwMixedTrace(
        phaseRequests, dev.capacityPages(), 77);
    const auto tracePost = workload::buildRwMixedTrace(
        phaseRequests, dev.capacityPages(), 78);

    sim::SimTime t = runner.now();
    const auto accPre =
        core::evaluatePredictionAccuracy(dev, check, tracePre, t, &t);
    ASSERT_EQ(dev.faultCounters().driftEvents, 0u)
        << "drift must not fire before phase one ends";
    const auto accPost =
        core::evaluatePredictionAccuracy(dev, check, tracePost, t, &t);
    ASSERT_EQ(dev.faultCounters().driftEvents, 1u);

    // Phase one matches the diagnosed model; after the buffer shrinks
    // 4x mid-phase-two, flush-point predictions misfire and HL recall
    // drops substantially.
    EXPECT_GT(accPre.hlAccuracy(), 0.6);
    EXPECT_LT(accPost.hlAccuracy(), accPre.hlAccuracy() - 0.1);
    EXPECT_GT(accPost.hlTotal, 100u);

    // The calibrator noticed through the rolling-accuracy machinery:
    // GC-history resets and/or the harmless-disable path.
    EXPECT_TRUE(check.calibrator().historyResets() > 0 ||
                check.calibrator().lowAccuracyStreak() > 0 ||
                !check.enabled());

    // And the model never goes ill-formed: predictions stay finite and
    // classification keeps working.
    const Prediction p = check.predict(makeRead4k(0), t);
    EXPECT_GE(p.eet, 0);
    if (!check.enabled()) {
        EXPECT_FALSE(p.hl); // harmlessly turned off => NL everywhere
    }
    EXPECT_TRUE(check.classifyActual(makeRead4k(0), milliseconds(10)));
}

} // namespace
} // namespace ssdcheck
