/**
 * @file Unit tests for resilience/policy.h: circuit-breaker lifecycle,
 * admission control, hedged reads with token budgets, the
 * graceful-degradation ladder, the supervisor health floor, and
 * snapshot roundtrips — driven by a scripted fake device so every
 * transition is provoked on purpose.
 */
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/resilient_device.h"
#include "recovery/state_io.h"
#include "resilience/policy.h"

namespace ssdcheck::resilience {
namespace {

using blockdev::IoRequest;
using blockdev::IoResult;
using blockdev::IoStatus;
using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using blockdev::ResilienceConfig;
using blockdev::ResilientDevice;
using sim::kTimeZero;
using sim::microseconds;
using sim::milliseconds;

/** One scripted attempt outcome. */
struct Step
{
    IoStatus status = IoStatus::Ok;
    sim::SimDuration latency = microseconds(100);
};

/** Replays a fixed script of completions (repeats the last step). */
class ScriptedDevice : public blockdev::BlockDevice
{
  public:
    explicit ScriptedDevice(std::vector<Step> script)
        : script_(std::move(script))
    {
    }

    IoResult submit(const IoRequest &req, sim::SimTime now) override
    {
        (void)req;
        const Step s = next_ < script_.size()
                           ? script_[next_++]
                           : (script_.empty() ? Step{} : script_.back());
        IoResult res;
        res.submitTime = now;
        res.completeTime = now + s.latency;
        res.status = s.status;
        return res;
    }

    uint64_t capacitySectors() const override { return 1 << 20; }
    void purge(sim::SimTime) override {}
    std::string name() const override { return "scripted"; }

  private:
    std::vector<Step> script_;
    size_t next_ = 0;
};

/** Policy with every subsystem quiet unless a test arms it. */
ResiliencePolicy
quietPolicy()
{
    ResiliencePolicy cfg;
    cfg.name = "test";
    cfg.enabled = true;
    cfg.deadlineBudget = 0;
    cfg.hedgeReads = false;
    cfg.breakerWindow = 8;
    cfg.breakerErrorThreshold = 0.5;
    cfg.breakerMinSamples = 4;
    cfg.breakerCooldown = milliseconds(10);
    cfg.breakerHalfOpenSuccesses = 2;
    cfg.maxBacklog = 0;
    cfg.sloLatencyTarget = milliseconds(1000);
    cfg.sloErrorBudget = 1.0;
    cfg.sloWindow = 8;
    cfg.ladderEvalEvery = 1000;
    cfg.failFastCooldown = milliseconds(100);
    return cfg;
}

TEST(ResiliencePolicyTest, PresetsValidateAndLookupWorks)
{
    ResiliencePolicy p;
    EXPECT_TRUE(resiliencePolicyByName("off", &p));
    EXPECT_FALSE(p.enabled);
    EXPECT_TRUE(resiliencePolicyByName("guarded", &p));
    EXPECT_TRUE(p.enabled);
    EXPECT_TRUE(resiliencePolicyByName("strict", &p));
    EXPECT_LT(p.deadlineBudget, milliseconds(1000));
    EXPECT_FALSE(resiliencePolicyByName("no-such-policy", &p));
    for (const auto &preset : allResiliencePolicies())
        EXPECT_EQ(preset.validate(), "") << preset.name;
}

TEST(ResiliencePolicyTest, ValidateRejectsMalformedConfigs)
{
    ResiliencePolicy p = quietPolicy();
    p.breakerWindow = PolicyDevice::kRingCapacity + 1;
    EXPECT_NE(p.validate().find("breakerWindow"), std::string::npos);
    p = quietPolicy();
    p.breakerErrorThreshold = 0.0;
    EXPECT_NE(p.validate().find("breakerErrorThreshold"),
              std::string::npos);
    p = quietPolicy();
    p.hedgeBudgetFraction = 1.5;
    EXPECT_NE(p.validate().find("hedgeBudgetFraction"), std::string::npos);
    p = quietPolicy();
    p.sloWindow = 0;
    EXPECT_NE(p.validate().find("sloWindow"), std::string::npos);
    // Disabled policies are never validated: they are pass-throughs.
    p.enabled = false;
    EXPECT_EQ(p.validate(), "");
}

TEST(PolicyDeviceTest, DisabledPolicyIsPureEnabledPassThrough)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(80)}});
    ResilientDevice rdev(inner);
    PolicyDevice dev(rdev, ResiliencePolicy{}); // enabled = false
    const IoResult res = dev.submit(makeRead4k(0), kTimeZero + milliseconds(1));
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.latency(), microseconds(80));
    // A disabled policy takes no decisions and counts nothing.
    EXPECT_EQ(dev.counters().submissions, 0u);
    EXPECT_EQ(dev.counters().forwarded, 0u);
    EXPECT_EQ(dev.breakerState(), BreakerState::Closed);
    EXPECT_EQ(dev.name(), "scripted");
    EXPECT_EQ(dev.capacitySectors(), 1u << 20);
}

TEST(PolicyDeviceTest, BreakerOpensShedsAndRecloses)
{
    // DeviceFault is permanent (never retried below), so each scripted
    // fault is exactly one failed caller exchange.
    ScriptedDevice inner({{IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    PolicyDevice dev(rdev, quietPolicy());

    // Four straight failures fill breakerMinSamples at 100% error rate.
    for (int i = 1; i <= 4; ++i) {
        const IoResult res = dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
        EXPECT_EQ(res.status, IoStatus::DeviceFault);
    }
    EXPECT_EQ(dev.breakerState(), BreakerState::Open);
    EXPECT_EQ(dev.counters().breakerOpens, 1u);

    // Open sheds instantly: host-side completion, device untouched.
    const IoResult shed = dev.submit(makeRead4k(0), kTimeZero + milliseconds(5));
    EXPECT_EQ(shed.status, IoStatus::Rejected);
    EXPECT_EQ(shed.attempts, 0u);
    EXPECT_EQ(shed.completeTime, kTimeZero + milliseconds(5));
    EXPECT_EQ(dev.counters().shedBreaker, 1u);

    // After the cooldown the next submissions are HalfOpen trials;
    // two successes re-close the breaker.
    const IoResult t1 = dev.submit(makeRead4k(0), kTimeZero + milliseconds(20));
    EXPECT_TRUE(t1.ok());
    EXPECT_EQ(dev.breakerState(), BreakerState::HalfOpen);
    const IoResult t2 = dev.submit(makeRead4k(0), kTimeZero + milliseconds(21));
    EXPECT_TRUE(t2.ok());
    EXPECT_EQ(dev.breakerState(), BreakerState::Closed);
    EXPECT_EQ(dev.counters().breakerCloses, 1u);
    EXPECT_EQ(dev.counters().breakerTrials, 2u);
}

TEST(PolicyDeviceTest, HalfOpenFailureReopensWithDoubledCooldown)
{
    ScriptedDevice inner({{IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    PolicyDevice dev(rdev, quietPolicy());

    for (int i = 1; i <= 4; ++i)
        (void)dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    ASSERT_EQ(dev.breakerState(), BreakerState::Open);

    // The HalfOpen trial fails: back to Open with a doubled dwell.
    const IoResult trial = dev.submit(makeRead4k(0), kTimeZero + milliseconds(20));
    EXPECT_EQ(trial.status, IoStatus::DeviceFault);
    EXPECT_EQ(dev.breakerState(), BreakerState::Open);
    EXPECT_EQ(dev.counters().breakerReopens, 1u);

    // One base cooldown after the reopen is now too early...
    const IoResult early = dev.submit(makeRead4k(0), kTimeZero + milliseconds(31));
    EXPECT_EQ(early.status, IoStatus::Rejected);
    EXPECT_EQ(dev.breakerState(), BreakerState::Open);
    // ...but two base cooldowns later the trial stream resumes.
    const IoResult late = dev.submit(makeRead4k(0), kTimeZero + milliseconds(41));
    EXPECT_TRUE(late.ok());
    EXPECT_EQ(dev.breakerState(), BreakerState::HalfOpen);
}

TEST(PolicyDeviceTest, AdmissionControlShedsOnBacklog)
{
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(50)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.maxBacklog = milliseconds(5);
    PolicyDevice dev(rdev, cfg);

    // The first request runs the completion horizon 50ms ahead.
    EXPECT_TRUE(dev.submit(makeRead4k(0), kTimeZero).ok());
    // An arrival 1ms later sees a 49ms backlog > the 5ms bound.
    const IoResult shed =
        dev.submit(makeRead4k(0), kTimeZero + milliseconds(1));
    EXPECT_EQ(shed.status, IoStatus::Rejected);
    EXPECT_EQ(dev.counters().shedOverload, 1u);
    // Once arrivals catch up with the horizon, service resumes.
    EXPECT_TRUE(dev.submit(makeRead4k(0), kTimeZero + milliseconds(60)).ok());
    EXPECT_EQ(dev.counters().forwarded, 2u);
}

TEST(PolicyDeviceTest, HedgedReadWinsCancelsLoserAndAccounts)
{
    // Primary is slow, backup fast: the hedge must win.
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(10)},
                          {IoStatus::Ok, microseconds(100)},
                          // Second exchange: fast primary, slow backup.
                          {IoStatus::Ok, microseconds(50)},
                          {IoStatus::Ok, milliseconds(20)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.hedgeReads = true;
    cfg.hedgeDelay = microseconds(500);
    cfg.hedgeBudgetFraction = 1.0;
    PolicyDevice dev(rdev, cfg);

    const IoResult won =
        dev.submitHinted(makeRead4k(0), kTimeZero, milliseconds(5));
    EXPECT_TRUE(won.ok());
    // The backup launched at +500us and finished in 100us, well before
    // the 10ms primary; the merged result keeps the original submit.
    EXPECT_EQ(won.submitTime, kTimeZero);
    EXPECT_EQ(won.completeTime, kTimeZero + microseconds(600));
    EXPECT_EQ(dev.counters().hedgesIssued, 1u);
    EXPECT_EQ(dev.counters().hedgeWins, 1u);
    EXPECT_EQ(dev.counters().hedgeCancelled, 1u);

    const IoResult lost =
        dev.submitHinted(makeRead4k(0), kTimeZero + milliseconds(100), milliseconds(5));
    EXPECT_TRUE(lost.ok());
    // The primary won this time: the backup is cancelled, not counted.
    EXPECT_EQ(lost.completeTime,
              kTimeZero + milliseconds(100) + microseconds(50));
    EXPECT_EQ(dev.counters().hedgesIssued, 2u);
    EXPECT_EQ(dev.counters().hedgeWins, 1u);
    EXPECT_EQ(dev.counters().hedgeCancelled, 2u);
}

TEST(PolicyDeviceTest, HedgeTokenBudgetBoundsAmplification)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.hedgeReads = true;
    cfg.hedgeDelay = microseconds(500);
    cfg.hedgeBudgetFraction = 0.0; // Tokens never accrue.
    PolicyDevice dev(rdev, cfg);

    const IoResult res =
        dev.submitHinted(makeRead4k(0), kTimeZero, milliseconds(5));
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(dev.counters().hedgesIssued, 0u);
    EXPECT_EQ(dev.counters().hedgeTokenDenied, 1u);
}

TEST(PolicyDeviceTest, WritesAreNeverHedged)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.hedgeReads = true;
    cfg.hedgeDelay = microseconds(500);
    cfg.hedgeBudgetFraction = 1.0;
    PolicyDevice dev(rdev, cfg);
    EXPECT_TRUE(dev.submitHinted(makeWrite4k(0), kTimeZero, milliseconds(5)).ok());
    EXPECT_EQ(dev.counters().hedgesIssued, 0u);
    EXPECT_EQ(dev.counters().hedgeTokenDenied, 0u);
}

TEST(PolicyDeviceTest, LadderStepsToHedgingOffAtHalfSpentBudget)
{
    // 2 of 4 completions violate the 10us target: rate 0.5 against a
    // 1.0 budget = half spent -> HedgingOff.
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)},
                          {IoStatus::Ok, microseconds(5)},
                          {IoStatus::Ok, microseconds(100)},
                          {IoStatus::Ok, microseconds(5)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.sloLatencyTarget = microseconds(10);
    cfg.sloErrorBudget = 1.0;
    cfg.ladderEvalEvery = 4;
    PolicyDevice dev(rdev, cfg);
    for (int i = 1; i <= 4; ++i)
        (void)dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::HedgingOff);
    EXPECT_EQ(dev.errorBudgetPpm(), 500000);
    EXPECT_EQ(dev.counters().sloViolations, 2u);
}

TEST(PolicyDeviceTest, LadderFailFastShedsThenRecoversAfterDwell)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.sloLatencyTarget = microseconds(10); // Everything violates.
    cfg.sloErrorBudget = 0.25;
    cfg.ladderEvalEvery = 4;
    cfg.failFastCooldown = milliseconds(100);
    PolicyDevice dev(rdev, cfg);

    for (int i = 1; i <= 4; ++i)
        EXPECT_TRUE(dev.submit(makeRead4k(0), kTimeZero + milliseconds(i)).ok());
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::FailFast);
    EXPECT_EQ(dev.errorBudgetPpm(), 0);

    // Inside the dwell everything is shed, reads included.
    const IoResult shed = dev.submit(makeRead4k(0), kTimeZero + milliseconds(10));
    EXPECT_EQ(shed.status, IoStatus::Rejected);
    EXPECT_EQ(dev.counters().shedFailFast, 1u);

    // After the dwell the ladder resets against a fresh window.
    const IoResult ok = dev.submit(makeRead4k(0), kTimeZero + milliseconds(200));
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::Normal);
}

TEST(PolicyDeviceTest, WritesDeferredShedsWritesServesReads)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.sloLatencyTarget = microseconds(10);
    // Every completion violates: rate 1.0 against a 0.75 budget puts
    // the usage at 1.33 — inside the [1, 2) WritesDeferred band.
    cfg.sloErrorBudget = 0.75;
    cfg.ladderEvalEvery = 4;
    PolicyDevice dev(rdev, cfg);
    for (int i = 1; i <= 4; ++i)
        (void)dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    ASSERT_EQ(dev.ladderLevel(), DegradationLevel::WritesDeferred);

    const IoResult w = dev.submit(makeWrite4k(0), kTimeZero + milliseconds(10));
    EXPECT_EQ(w.status, IoStatus::Rejected);
    EXPECT_EQ(dev.counters().shedWriteDeferred, 1u);
    const IoResult r = dev.submit(makeRead4k(0), kTimeZero + milliseconds(11));
    EXPECT_TRUE(r.ok());
}

TEST(PolicyDeviceTest, SupervisorHealthFloorsLadderAtHedgingOff)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(5)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.sloLatencyTarget = milliseconds(1000); // Nothing violates.
    cfg.ladderEvalEvery = 4;
    PolicyDevice dev(rdev, cfg);

    dev.observeHealth(core::HealthState::Degraded);
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::HedgingOff);
    // A clean eval cannot drop below the floor while degraded.
    for (int i = 1; i <= 4; ++i)
        (void)dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::HedgingOff);
    // Recovery lifts the floor; the next eval returns to Normal.
    dev.observeHealth(core::HealthState::Healthy);
    for (int i = 5; i <= 8; ++i)
        (void)dev.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    EXPECT_EQ(dev.ladderLevel(), DegradationLevel::Normal);
}

TEST(PolicyDeviceTest, DeadlineBudgetSurfacesExpired)
{
    // One scripted 800ms stall: with default retries the exchange
    // would take seconds; a 5ms budget cuts it off at the boundary.
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(800)}});
    ResilientDevice rdev(inner);
    ResiliencePolicy cfg = quietPolicy();
    cfg.deadlineBudget = milliseconds(5);
    PolicyDevice dev(rdev, cfg);
    const IoResult res = dev.submit(makeRead4k(0), kTimeZero + milliseconds(1));
    EXPECT_EQ(res.status, IoStatus::Expired);
    EXPECT_LE(res.completeTime, kTimeZero + milliseconds(6));
    EXPECT_EQ(dev.counters().deadlineExpired, 1u);
    EXPECT_LE(dev.maxExchange(), cfg.deadlineBudget);
}

TEST(PolicyDeviceTest, SaveLoadRoundtripRestoresDynamicState)
{
    ScriptedDevice inner({{IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)},
                          {IoStatus::DeviceFault, microseconds(100)}});
    ResilientDevice rdev(inner);
    PolicyDevice a(rdev, quietPolicy());
    for (int i = 1; i <= 4; ++i)
        (void)a.submit(makeRead4k(0), kTimeZero + milliseconds(i));
    (void)a.submit(makeRead4k(0), kTimeZero + milliseconds(5)); // One breaker shed.
    ASSERT_EQ(a.breakerState(), BreakerState::Open);

    recovery::StateWriter w;
    a.saveState(w);

    ScriptedDevice inner2({});
    ResilientDevice rdev2(inner2);
    PolicyDevice b(rdev2, quietPolicy());
    recovery::StateReader r(w.bytes().data(), w.bytes().size());
    ASSERT_TRUE(b.loadState(r));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(b.breakerState(), a.breakerState());
    EXPECT_EQ(b.ladderLevel(), a.ladderLevel());
    EXPECT_EQ(b.errorBudgetPpm(), a.errorBudgetPpm());
    EXPECT_EQ(b.maxExchange(), a.maxExchange());
    EXPECT_EQ(b.hedgeDelayEffective(), a.hedgeDelayEffective());
    EXPECT_EQ(b.counters().submissions, a.counters().submissions);
    EXPECT_EQ(b.counters().shedBreaker, a.counters().shedBreaker);
    EXPECT_EQ(b.counters().breakerOpens, a.counters().breakerOpens);
    EXPECT_EQ(b.counters().sloViolations, a.counters().sloViolations);

    // The restored breaker honors the saved open timestamp: still
    // shedding right after the trip, half-open once the dwell passes.
    EXPECT_EQ(b.submit(makeRead4k(0), kTimeZero + milliseconds(6)).status,
              IoStatus::Rejected);
    EXPECT_TRUE(b.submit(makeRead4k(0), kTimeZero + milliseconds(20)).ok());
    EXPECT_EQ(b.breakerState(), BreakerState::HalfOpen);
}

TEST(PolicyDeviceTest, LoadStateRejectsTruncatedAndIncompatibleState)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(100)}});
    ResilientDevice rdev(inner);
    PolicyDevice a(rdev, quietPolicy());
    (void)a.submit(makeRead4k(0), kTimeZero + milliseconds(1));
    recovery::StateWriter w;
    a.saveState(w);

    PolicyDevice truncated(rdev, quietPolicy());
    recovery::StateReader half(w.bytes().data(), w.size() / 2);
    EXPECT_FALSE(truncated.loadState(half));

    // A config whose eval period is shorter than the saved countdown
    // is structurally incompatible, even at full length.
    ResiliencePolicy small = quietPolicy();
    small.ladderEvalEvery = 2;
    PolicyDevice incompatible(rdev, small);
    recovery::StateReader full(w.bytes().data(), w.bytes().size());
    EXPECT_FALSE(incompatible.loadState(full));
    EXPECT_NE(full.error().find("countdown"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::resilience
