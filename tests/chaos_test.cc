/**
 * @file Tests for resilience/chaos.h: scenario parsing, deterministic
 * campaign digests across --jobs and repeat runs, mid-shard
 * checkpoint/restore bit-identity, and the cross-layer invariant
 * checks the campaign runner asserts on every shard.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "resilience/chaos.h"

namespace ssdcheck::resilience {
namespace {

/** Small fast scenario: storms profile, guarded policy, two seeds. */
const char kSmallScenario[] = "# unit scenario\n"
                              "name unit\n"
                              "device A\n"
                              "workload RW Mixed\n"
                              "scale 0.002\n"
                              "seeds 1 2\n"
                              "pacing closed\n"
                              "faults storms\n"
                              "policy guarded\n"
                              "assert-min-completed 1\n";

ChaosScenario
smallScenario()
{
    ChaosScenario sc;
    std::string err;
    EXPECT_TRUE(ChaosScenario::parse(kSmallScenario, &sc, &err)) << err;
    return sc;
}

TEST(ChaosScenarioTest, ParseFillsFieldsAndDefaults)
{
    const std::string text = "name full\n"
                             "device B\n"
                             "workload RW Mixed\n"
                             "scale 0.01\n"
                             "seeds 7 8 9\n"
                             "pacing open\n"
                             "arrival-us 250\n"
                             "supervisor 1\n"
                             "faults storms\n"
                             "unc-probability 0.001\n"
                             "phase 100 200 1.0 0.5 10 20\n"
                             "unc-cluster 4096 64 0.8\n"
                             "policy strict\n"
                             "deadline-ms 200\n"
                             "hedge-reads 1\n"
                             "assert-p999-ms 400\n"
                             "assert-max-shed 5000\n"
                             "assert-breaker-opens 1\n"
                             "assert-breaker-recloses 1\n";
    ChaosScenario sc;
    std::string err;
    ASSERT_TRUE(ChaosScenario::parse(text, &sc, &err)) << err;
    EXPECT_EQ(sc.name, "full");
    EXPECT_EQ(sc.device, "B");
    EXPECT_EQ(sc.seeds, (std::vector<uint64_t>{7, 8, 9}));
    EXPECT_EQ(sc.pacing, Pacing::Open);
    EXPECT_EQ(sc.arrivalPeriod, sim::microseconds(250));
    EXPECT_TRUE(sc.supervisor);
    // Preset base + per-field overrides compose.
    EXPECT_DOUBLE_EQ(sc.faults.readUncProbability, 0.001);
    EXPECT_TRUE(sc.faults.regime.active()); // From the storms preset.
    ASSERT_EQ(sc.faults.phases.size(), 1u);
    EXPECT_EQ(sc.faults.phases[0].fromRequest, 100u);
    EXPECT_DOUBLE_EQ(sc.faults.phases[0].regime.uncFactor, 10.0);
    ASSERT_EQ(sc.faults.uncClusters.size(), 1u);
    EXPECT_EQ(sc.faults.uncClusters[0].firstPage, 4096u);
    EXPECT_EQ(sc.policy.name, "strict");
    EXPECT_EQ(sc.policy.deadlineBudget, sim::milliseconds(200));
    EXPECT_EQ(sc.assertP999, sim::milliseconds(400));
    EXPECT_EQ(sc.assertMaxShed, 5000u);
    EXPECT_EQ(sc.assertBreakerOpens, 1u);
    EXPECT_TRUE(sc.assertBreakerRecloses);
}

TEST(ChaosScenarioTest, DefaultsWhenOnlySeedsGiven)
{
    ChaosScenario sc;
    std::string err;
    ASSERT_TRUE(ChaosScenario::parse("seeds 1\n", &sc, &err)) << err;
    EXPECT_EQ(sc.device, "A");
    EXPECT_EQ(sc.workload, "RW Mixed");
    EXPECT_EQ(sc.pacing, Pacing::Open);
    EXPECT_FALSE(sc.supervisor);
    EXPECT_TRUE(sc.faults.inert());
    // The policy base preset is "guarded", not "off": a chaos run
    // without an explicit policy still exercises the resilience stack.
    EXPECT_EQ(sc.policy.name, "guarded");
    EXPECT_TRUE(sc.policy.enabled);
    EXPECT_EQ(sc.assertMaxShed, UINT64_MAX);
}

TEST(ChaosScenarioTest, ParseRejectsMalformedInput)
{
    ChaosScenario sc;
    std::string err;
    EXPECT_FALSE(ChaosScenario::parse("seeds 1\nbogus-key 3\n", &sc, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_NE(err.find("bogus-key"), std::string::npos);

    EXPECT_FALSE(ChaosScenario::parse("seeds 1 banana\n", &sc, &err));
    EXPECT_NE(err.find("seeds"), std::string::npos);

    EXPECT_FALSE(ChaosScenario::parse("scale 0.01\n", &sc, &err));
    EXPECT_NE(err.find("no seeds"), std::string::npos);

    EXPECT_FALSE(ChaosScenario::parse("seeds 1\npacing sideways\n", &sc,
                                      &err));

    // Field overrides that break profile/policy validation are caught
    // at the end of the parse, not at shard-construction time.
    EXPECT_FALSE(ChaosScenario::parse("seeds 1\nunc-probability 3.0\n",
                                      &sc, &err));
    EXPECT_NE(err.find("fault schedule"), std::string::npos);
    EXPECT_FALSE(ChaosScenario::parse("seeds 1\nslo-error-budget 0\n",
                                      &sc, &err));
    EXPECT_NE(err.find("policy"), std::string::npos);
}

TEST(ChaosScenarioTest, CanonicalReflectsCorrelatedFaultSchedule)
{
    ChaosScenario a = smallScenario();
    ChaosScenario b = a;
    EXPECT_EQ(a.canonical(), b.canonical());
    ssd::FaultPhase ph;
    ph.fromRequest = 1;
    ph.toRequest = 2;
    ph.regime.enterBurst = 1.0;
    ph.regime.exitBurst = 1.0;
    b.faults.phases.push_back(ph);
    EXPECT_NE(a.canonical(), b.canonical());
    ChaosScenario c = a;
    c.policy.deadlineBudget += 1;
    EXPECT_NE(a.canonical(), c.canonical());
}

TEST(ChaosCampaignTest, DigestIdenticalAcrossJobsAndRepeats)
{
    const ChaosScenario sc = smallScenario();
    const ChaosCampaignResult serial = runChaosCampaign(sc, 1);
    const ChaosCampaignResult parallel4 = runChaosCampaign(sc, 4);
    const ChaosCampaignResult repeat = runChaosCampaign(sc, 4);
    ASSERT_EQ(serial.shards.size(), 2u);
    ASSERT_EQ(parallel4.shards.size(), 2u);
    for (size_t i = 0; i < serial.shards.size(); ++i) {
        EXPECT_EQ(serial.shards[i].digest, parallel4.shards[i].digest)
            << "seed " << serial.shards[i].seed;
        EXPECT_EQ(serial.shards[i].completedOk,
                  parallel4.shards[i].completedOk);
        EXPECT_GT(serial.shards[i].completedOk, 0u);
        EXPECT_TRUE(serial.shards[i].failures.empty())
            << serial.shards[i].failures[0];
    }
    EXPECT_EQ(serial.campaignDigest, parallel4.campaignDigest);
    EXPECT_EQ(serial.campaignDigest, repeat.campaignDigest);
    EXPECT_TRUE(serial.pass);
    // Different seeds must not collapse to one digest.
    EXPECT_NE(serial.shards[0].digest, serial.shards[1].digest);
}

TEST(ChaosCampaignTest, ViolatedAssertionFailsTheCampaign)
{
    ChaosScenario sc = smallScenario();
    sc.seeds = {1};
    sc.assertMinCompleted = UINT64_MAX; // Impossible liveness floor.
    const ChaosCampaignResult res = runChaosCampaign(sc, 2);
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.shards.size(), 1u);
    ASSERT_FALSE(res.shards[0].failures.empty());
    EXPECT_NE(res.shards[0].failures[0].find("liveness"),
              std::string::npos);
}

TEST(ChaosCampaignTest, EmptySeedListIsAnError)
{
    ChaosScenario sc = smallScenario();
    sc.seeds.clear();
    const ChaosCampaignResult res = runChaosCampaign(sc, 1);
    EXPECT_FALSE(res.pass);
    EXPECT_FALSE(res.error.empty());
}

TEST(ChaosShardTest, InvariantsHoldAfterFullRun)
{
    const ChaosScenario sc = smallScenario();
    std::string err;
    const std::unique_ptr<ChaosShard> shard =
        ChaosShard::create(sc, 1, false, &err);
    ASSERT_NE(shard, nullptr) << err;
    while (!shard->done())
        shard->step();
    const std::vector<std::string> violations = shard->checkInvariants();
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0]);
    EXPECT_GT(shard->completedOk(), 0u);
}

TEST(ChaosShardTest, UnknownDeviceAndWorkloadAreConstructionErrors)
{
    ChaosScenario sc = smallScenario();
    sc.device = "Z";
    std::string err;
    EXPECT_EQ(ChaosShard::create(sc, 1, false, &err), nullptr);
    EXPECT_NE(err.find("device"), std::string::npos);
    sc = smallScenario();
    sc.workload = "No Such Workload";
    EXPECT_EQ(ChaosShard::create(sc, 1, false, &err), nullptr);
    EXPECT_NE(err.find("workload"), std::string::npos);
}

TEST(ChaosShardTest, CheckpointRestoreMidShardIsBitIdentical)
{
    const ChaosScenario sc = smallScenario();
    std::string err;
    const std::unique_ptr<ChaosShard> golden =
        ChaosShard::create(sc, 2, false, &err);
    ASSERT_NE(golden, nullptr) << err;
    const std::unique_ptr<ChaosShard> first =
        ChaosShard::create(sc, 2, false, &err);
    ASSERT_NE(first, nullptr) << err;

    // Run the first half, snapshot, and resume in a fresh shard that
    // skipped all one-time construction work.
    const uint64_t half = golden->trace().size() / 2;
    while (first->cursor() < half)
        first->step();
    const recovery::Snapshot snap = first->checkpoint();

    const std::unique_ptr<ChaosShard> resumed =
        ChaosShard::create(sc, 2, true, &err);
    ASSERT_NE(resumed, nullptr) << err;
    std::string detail;
    ASSERT_EQ(resumed->restore(snap, &detail), recovery::LoadError::Ok)
        << detail;
    EXPECT_EQ(resumed->cursor(), half);
    EXPECT_EQ(resumed->now(), first->now());

    while (!golden->done())
        golden->step();
    while (!resumed->done())
        resumed->step();

    EXPECT_EQ(resumed->digest(), golden->digest());
    EXPECT_EQ(resumed->completedOk(), golden->completedOk());
    EXPECT_EQ(resumed->now(), golden->now());
    // The restored policy stack carries breaker/hedge/admission state
    // bit-exactly: its counters must finish identical to the golden's.
    const PolicyCounters &gc = golden->policy().counters();
    const PolicyCounters &rc = resumed->policy().counters();
    EXPECT_EQ(rc.submissions, gc.submissions);
    EXPECT_EQ(rc.forwarded, gc.forwarded);
    EXPECT_EQ(rc.shedOverload, gc.shedOverload);
    EXPECT_EQ(rc.hedgesIssued, gc.hedgesIssued);
    EXPECT_EQ(rc.hedgeWins, gc.hedgeWins);
    EXPECT_EQ(rc.breakerOpens, gc.breakerOpens);
    EXPECT_EQ(rc.breakerCloses, gc.breakerCloses);
    EXPECT_EQ(rc.deadlineExpired, gc.deadlineExpired);
    const std::vector<std::string> violations = resumed->checkInvariants();
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0]);
}

TEST(ChaosShardTest, RestoreRejectsSnapshotFromAnotherSeed)
{
    const ChaosScenario sc = smallScenario();
    std::string err;
    const std::unique_ptr<ChaosShard> a =
        ChaosShard::create(sc, 1, false, &err);
    ASSERT_NE(a, nullptr) << err;
    const recovery::Snapshot snap = a->checkpoint();
    const std::unique_ptr<ChaosShard> b =
        ChaosShard::create(sc, 2, true, &err);
    ASSERT_NE(b, nullptr) << err;
    std::string detail;
    EXPECT_EQ(b->restore(snap, &detail),
              recovery::LoadError::ConfigMismatch);
    EXPECT_NE(detail.find("seed"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::resilience
