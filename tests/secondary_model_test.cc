/** @file Unit tests for core/secondary_model.h (§VI future work). */
#include <gtest/gtest.h>

#include "core/secondary_model.h"

namespace ssdcheck::core {
namespace {

using sim::milliseconds;

TEST(SecondaryModelTest, FreshModelExpectsNothing)
{
    SecondaryModel m;
    EXPECT_FALSE(m.eventExpectedOnNextFlush());
    EXPECT_EQ(m.expectedOverhead(), 0);
    EXPECT_EQ(m.eventsObserved(), 0u);
    EXPECT_EQ(m.centroid(0), 0);
    EXPECT_EQ(m.centroid(1), 0);
}

TEST(SecondaryModelTest, FirstEventSeedsClusterZero)
{
    SecondaryModel m;
    EXPECT_EQ(m.onEventObserved(milliseconds(10)), 0);
    EXPECT_NEAR(static_cast<double>(m.centroid(0)),
                static_cast<double>(milliseconds(10)), 1e5);
}

TEST(SecondaryModelTest, DistinctMagnitudesOpenSecondCluster)
{
    SecondaryModel m;
    m.onEventObserved(milliseconds(10));
    // Within 2x: same cluster.
    EXPECT_EQ(m.onEventObserved(milliseconds(15)), 0);
    // Far away: second cluster.
    EXPECT_EQ(m.onEventObserved(milliseconds(60)), 1);
    EXPECT_GT(m.centroid(1), m.centroid(0));
}

TEST(SecondaryModelTest, ClassificationUsesNearestLogCentroid)
{
    SecondaryModel m;
    m.onEventObserved(milliseconds(10)); // cluster 0 ~ 10ms
    m.onEventObserved(milliseconds(80)); // cluster 1 ~ 80ms
    EXPECT_EQ(m.onEventObserved(milliseconds(12)), 0);
    EXPECT_EQ(m.onEventObserved(milliseconds(70)), 1);
    // Geometric midpoint ~28ms: goes to the nearer side in log space.
    const int c = m.onEventObserved(milliseconds(20));
    EXPECT_EQ(c, 0);
}

TEST(SecondaryModelTest, PerClusterIntervalsArePredictedSeparately)
{
    GcModelConfig cfg;
    cfg.minHistory = 4;
    cfg.quantile = 0.25;
    SecondaryModel m(cfg);
    // Cluster 0 (10ms events) every 4 flushes; cluster 1 (80ms)
    // every 12 flushes.
    for (int cycle = 0; cycle < 12; ++cycle) {
        for (int f = 0; f < 4; ++f)
            m.onFlush();
        m.onEventObserved(milliseconds(10));
        if (cycle % 3 == 2)
            m.onEventObserved(milliseconds(80));
    }
    // Right after both fired, neither expects an event immediately...
    EXPECT_FALSE(m.eventExpectedOnNextFlush());
    // ...but after 3 more flushes cluster 0's 4-flush period is due.
    for (int f = 0; f < 3; ++f)
        m.onFlush();
    EXPECT_TRUE(m.eventExpectedOnNextFlush());
    // The expected overhead is cluster 0's magnitude, not cluster 1's.
    EXPECT_LT(m.expectedOverhead(), milliseconds(25));
    EXPECT_GT(m.expectedOverhead(), milliseconds(5));
}

TEST(SecondaryModelTest, ExpectedOverheadSumsDueClusters)
{
    GcModelConfig cfg;
    cfg.minHistory = 2;
    cfg.quantile = 0.0;
    SecondaryModel m(cfg);
    for (int cycle = 0; cycle < 3; ++cycle) {
        m.onFlush();
        m.onEventObserved(milliseconds(10));
        m.onEventObserved(milliseconds(80));
    }
    m.onFlush();
    ASSERT_TRUE(m.eventExpectedOnNextFlush());
    // Both clusters due: overheads add.
    EXPECT_GT(m.expectedOverhead(), milliseconds(60));
}

TEST(SecondaryModelTest, ResetClearsEverything)
{
    SecondaryModel m;
    for (int i = 0; i < 10; ++i) {
        m.onFlush();
        m.onEventObserved(milliseconds(10));
    }
    m.resetHistory();
    EXPECT_EQ(m.eventsObserved(), 0u);
    EXPECT_EQ(m.centroid(0), 0);
    EXPECT_FALSE(m.eventExpectedOnNextFlush());
}

TEST(SecondaryModelTest, CentroidTracksDriftingMagnitude)
{
    SecondaryModel m;
    for (int i = 0; i < 100; ++i)
        m.onEventObserved(milliseconds(10));
    const auto before = m.centroid(0);
    for (int i = 0; i < 100; ++i)
        m.onEventObserved(milliseconds(14)); // < 2x: same cluster
    EXPECT_GT(m.centroid(0), before);
}

} // namespace
} // namespace ssdcheck::core
