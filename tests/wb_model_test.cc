/** @file Unit tests for core/wb_model.h. */
#include <gtest/gtest.h>

#include "core/wb_model.h"

namespace ssdcheck::core {
namespace {

TEST(WbModelTest, FlushAtCapacity)
{
    WriteBufferModel m(4, false);
    EXPECT_FALSE(m.onWriteSubmitted());
    EXPECT_FALSE(m.onWriteSubmitted());
    EXPECT_FALSE(m.onWriteSubmitted());
    EXPECT_TRUE(m.onWriteSubmitted()); // 4th write flushes
    EXPECT_EQ(m.counter(), 0u);
}

TEST(WbModelTest, WouldFlushIsSideEffectFree)
{
    WriteBufferModel m(4, false);
    m.onWriteSubmitted();
    m.onWriteSubmitted();
    m.onWriteSubmitted();
    EXPECT_TRUE(m.wouldFlushOnWrite());
    EXPECT_TRUE(m.wouldFlushOnWrite()); // still true: no state change
    EXPECT_EQ(m.counter(), 3u);
}

TEST(WbModelTest, MultiPageWritesAdvanceFaster)
{
    WriteBufferModel m(8, false);
    EXPECT_FALSE(m.wouldFlushOnWrite(4));
    m.onWriteSubmitted(4);
    EXPECT_TRUE(m.wouldFlushOnWrite(4));
    EXPECT_TRUE(m.onWriteSubmitted(4));
}

TEST(WbModelTest, ReadsIgnoredWithoutReadTrigger)
{
    WriteBufferModel m(4, false);
    m.onWriteSubmitted();
    EXPECT_FALSE(m.wouldFlushOnRead());
    EXPECT_FALSE(m.onReadSubmitted());
    EXPECT_EQ(m.counter(), 1u);
}

TEST(WbModelTest, ReadTriggerFlushesNonEmptyBuffer)
{
    WriteBufferModel m(4, true);
    EXPECT_FALSE(m.wouldFlushOnRead()); // empty: no flush
    m.onWriteSubmitted();
    EXPECT_TRUE(m.wouldFlushOnRead());
    EXPECT_TRUE(m.onReadSubmitted());
    EXPECT_EQ(m.counter(), 0u);
    EXPECT_FALSE(m.onReadSubmitted()); // now empty again
}

TEST(WbModelTest, ResetCounterResynchronizes)
{
    WriteBufferModel m(4, false);
    m.onWriteSubmitted();
    m.onWriteSubmitted();
    m.resetCounter();
    EXPECT_EQ(m.counter(), 0u);
    EXPECT_FALSE(m.wouldFlushOnWrite());
}

TEST(WbModelTest, SizeAccessor)
{
    WriteBufferModel m(62, false);
    EXPECT_EQ(m.size(), 62u);
}

} // namespace
} // namespace ssdcheck::core
