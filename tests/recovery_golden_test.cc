/**
 * @file
 * Golden snapshot fixture: a small committed container holding
 * deterministically-built component states. Any change to the
 * container layout or to a component's byte encoding makes the
 * freshly-built bytes diverge from the committed file and fails the
 * build — the signal to bump recovery::kFormatVersion (old snapshots
 * must be refused, not silently misread).
 *
 * Regenerate after an intentional format change:
 *   SSDCHECK_REGEN_GOLDEN=1 ./build/tests/recovery_tests \
 *       --gtest_filter='RecoveryGoldenTest.*'
 * and commit the updated fixture alongside the version bump.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib> // lint:allow(wall-clock): getenv gates fixture regen, not simulation
#include <fstream>
#include <string>
#include <vector>

#include "core/calibrator.h"
#include "core/gc_model.h"
#include "core/latency_monitor.h"
#include "recovery/snapshot.h"
#include "recovery/state_io.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "stats/histogram.h"

#ifndef SSDCHECK_GOLDEN_FIXTURE
#error "SSDCHECK_GOLDEN_FIXTURE must point at the committed fixture"
#endif

namespace ssdcheck::recovery {
namespace {

/**
 * Build the reference container. Every input is a fixed constant so
 * the bytes depend only on the serialization format itself.
 */
Snapshot
buildGolden()
{
    Snapshot snap;
    snap.begin(fnv1a("golden-fixture-v1"), 123, 456789);

    {
        sim::Rng rng(0x601dULL);
        for (int i = 0; i < 100; ++i)
            rng.next();
        StateWriter w;
        rng.saveState(w);
        snap.addSection(SectionId::Device, w.take());
    }
    {
        stats::Histogram h(0, 1000, 32);
        for (int i = 0; i < 500; ++i)
            h.add((i * 127) % 32000);
        StateWriter w;
        h.saveState(w);
        snap.addSection(SectionId::Model, w.take());
    }
    {
        core::LatencyMonitor mon;
        for (int i = 0; i < 200; ++i)
            mon.record(/*predictedHl=*/i % 3 == 0,
                       /*actualHl=*/i % 3 == 0 || i % 17 == 0);
        StateWriter w;
        mon.saveState(w);
        snap.addSection(SectionId::Supervisor, w.take());
    }
    {
        core::Calibrator cal;
        for (int i = 0; i < 50; ++i) {
            cal.observeNlRead(sim::microseconds(80 + i));
            cal.observeNlWrite(sim::microseconds(20 + i));
        }
        cal.observeFlushEvent(sim::milliseconds(2));
        cal.observeGcEvent(sim::milliseconds(9));
        StateWriter w;
        cal.saveState(w);
        snap.addSection(SectionId::Resilient, w.take());
    }
    {
        core::GcModel gc;
        for (int round = 0; round < 12; ++round) {
            for (int f = 0; f < 7 + round % 3; ++f)
                gc.onFlush();
            gc.onGcObserved();
        }
        StateWriter w;
        gc.saveState(w);
        snap.addSection(SectionId::Accuracy, w.take());
    }
    return snap;
}

std::vector<uint8_t>
readFixture(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

TEST(RecoveryGoldenTest, CommittedFixtureMatchesFreshlyBuiltBytes)
{
    const std::vector<uint8_t> fresh = buildGolden().serialize();

    if (std::getenv("SSDCHECK_REGEN_GOLDEN") != nullptr) {
        const std::string err =
            writeFileAtomic(SSDCHECK_GOLDEN_FIXTURE, fresh);
        ASSERT_EQ(err, "");
        GTEST_SKIP() << "regenerated " << SSDCHECK_GOLDEN_FIXTURE;
    }

    const std::vector<uint8_t> committed =
        readFixture(SSDCHECK_GOLDEN_FIXTURE);
    ASSERT_FALSE(committed.empty())
        << "missing fixture " << SSDCHECK_GOLDEN_FIXTURE
        << " — run with SSDCHECK_REGEN_GOLDEN=1 to create it";

    EXPECT_EQ(fresh, committed)
        << "snapshot byte format drifted from the committed golden "
           "fixture. If the change is intentional, bump "
           "recovery::kFormatVersion (old snapshots must be refused, "
           "not reinterpreted) and regenerate the fixture with "
           "SSDCHECK_REGEN_GOLDEN=1.";
}

TEST(RecoveryGoldenTest, CommittedFixtureParsesAndRoundTrips)
{
    const std::vector<uint8_t> committed =
        readFixture(SSDCHECK_GOLDEN_FIXTURE);
    ASSERT_FALSE(committed.empty());

    Snapshot snap;
    std::string detail;
    ASSERT_EQ(snap.parse(committed, &detail), LoadError::Ok) << detail;
    EXPECT_EQ(snap.configHash(), fnv1a("golden-fixture-v1"));
    EXPECT_EQ(snap.requestIndex(), 123u);
    EXPECT_EQ(snap.simTimeNs(), 456789);
    EXPECT_EQ(snap.sectionCount(), 5u);

    // Components built today must still be able to load state written
    // by the committed (possibly older) build of the same version.
    {
        const auto *p = snap.section(SectionId::Device);
        ASSERT_NE(p, nullptr);
        sim::Rng rng(1);
        StateReader r(*p);
        ASSERT_TRUE(rng.loadState(r));
        EXPECT_TRUE(r.atEnd());
        EXPECT_EQ(rng.draws(), 100u);
        sim::Rng expect(0x601dULL);
        for (int i = 0; i < 100; ++i)
            expect.next();
        EXPECT_EQ(rng.next(), expect.next());
    }
    {
        const auto *p = snap.section(SectionId::Model);
        ASSERT_NE(p, nullptr);
        stats::Histogram h(0, 1000, 32);
        StateReader r(*p);
        ASSERT_TRUE(h.loadState(r));
        EXPECT_TRUE(r.atEnd());
        EXPECT_EQ(h.total(), 500u);
    }
    {
        const auto *p = snap.section(SectionId::Accuracy);
        ASSERT_NE(p, nullptr);
        core::GcModel gc;
        StateReader r(*p);
        ASSERT_TRUE(gc.loadState(r));
        EXPECT_TRUE(r.atEnd());
        EXPECT_EQ(gc.history().size(), 12u);
    }
}

} // namespace
} // namespace ssdcheck::recovery
