/** @file Unit and property tests for ssd/ssd_device.h. */
#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/rng.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::ssd {
namespace {

using blockdev::IoRequest;
using blockdev::IoType;
using blockdev::kSectorsPerPage;
using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::kTimeZero;
using sim::microseconds;
using sim::SimTime;

/** Small deterministic two-volume device. */
SsdConfig
twoVolumeCfg()
{
    SsdConfig c;
    c.userCapacityPages = 16 * 1024;
    c.volumeBits = {10};
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.opRatio = 0.3;
    c.gcLowBlocks = 3;
    c.gcHighBlocks = 6;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(SsdDeviceTest, CapacityMatchesConfig)
{
    SsdDevice dev(twoVolumeCfg());
    EXPECT_EQ(dev.capacitySectors(), 16u * 1024 * 8);
    EXPECT_EQ(dev.capacityPages(), 16u * 1024);
    EXPECT_EQ(dev.name(), "ssd");
}

TEST(SsdDeviceTest, WriteReadRoundTripWithStamps)
{
    SsdDevice dev(twoVolumeCfg());
    const uint64_t stamp = 0x1234;
    dev.submitDetailed(makeWrite4k(100), kTimeZero, nullptr, &stamp, nullptr);
    uint64_t got = 0;
    dev.submitDetailed(makeRead4k(100), kTimeZero + microseconds(100), nullptr, nullptr,
                       &got);
    EXPECT_EQ(got, stamp);
}

TEST(SsdDeviceTest, VolumesDoNotBlockEachOther)
{
    const SsdConfig cfg = twoVolumeCfg();
    SsdDevice dev(cfg);
    dev.precondition();
    // Fill volume 0's buffer (pages with bit 10 of the LBA clear).
    SimTime t;
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i) {
        const auto res = dev.submit(makeWrite4k(i), t);
        t = std::max(t, res.completeTime);
    }
    // Volume 0 is now flushing; a read to volume 1 sails through
    // while a read to volume 0 blocks. The bit-10 stripe is 128
    // pages wide: page 100 -> volume 0, page 133 -> volume 1.
    const uint64_t vol1Page = (1ULL << 10) / kSectorsPerPage; // lba bit 10 set
    IoDetail d0, d1;
    const auto r1 = dev.submitDetailed(makeRead4k(vol1Page + 5), t, &d1);
    const auto r0 = dev.submitDetailed(makeRead4k(100), t, &d0);
    EXPECT_FALSE(d1.blockedByBusy);
    EXPECT_TRUE(d0.blockedByBusy);
    EXPECT_LT(r1.latency(), microseconds(250));
    EXPECT_GT(r0.latency(), microseconds(250));
}

TEST(SsdDeviceTest, BusSerializesSubmissions)
{
    const SsdConfig cfg = twoVolumeCfg();
    SsdDevice dev(cfg);
    // Two writes to different volumes at the same instant: the only
    // shared resource is the host interface, so the second completes
    // exactly one bus slot later.
    const uint64_t vol1Page = (1ULL << 10) / blockdev::kSectorsPerPage;
    const auto a = dev.submit(makeWrite4k(0), kTimeZero);
    const auto b = dev.submit(makeWrite4k(vol1Page), kTimeZero);
    EXPECT_EQ(b.completeTime - a.completeTime, cfg.busTime);
}

TEST(SsdDeviceTest, TrimCompletesQuickly)
{
    SsdDevice dev(twoVolumeCfg());
    IoRequest t;
    t.type = IoType::Trim;
    t.lba = 0;
    t.sectors = 8;
    const auto res = dev.submit(t, kTimeZero);
    EXPECT_LT(res.latency(), microseconds(50));
}

TEST(SsdDeviceTest, PurgeDropsData)
{
    SsdDevice dev(twoVolumeCfg());
    const uint64_t stamp = 9;
    dev.submitDetailed(makeWrite4k(3), kTimeZero, nullptr, &stamp, nullptr);
    dev.purge(kTimeZero + microseconds(10));
    uint64_t got = 0;
    EXPECT_FALSE(dev.peekPage(3, &got));
}

TEST(SsdDeviceTest, PreconditionMapsEveryPage)
{
    SsdDevice dev(twoVolumeCfg());
    dev.precondition();
    uint64_t got = 0;
    EXPECT_TRUE(dev.peekPage(0, &got));
    EXPECT_TRUE(dev.peekPage(dev.capacityPages() - 1, &got));
}

TEST(SsdDeviceTest, HiccupAlwaysFiresAtProbabilityOne)
{
    SsdConfig cfg = twoVolumeCfg();
    cfg.hiccupProbability = 1.0;
    SsdDevice dev(cfg);
    IoDetail d;
    const auto res = dev.submitDetailed(makeWrite4k(0), kTimeZero, &d);
    EXPECT_TRUE(d.hiccup);
    EXPECT_GE(res.latency(), cfg.hiccupMin);
}

TEST(SsdDeviceTest, MultiPageWriteSpanningVolumes)
{
    const SsdConfig cfg = twoVolumeCfg();
    SsdDevice dev(cfg);
    // Request crossing the bit-10 boundary: pages land in different
    // volumes; all stamps must persist.
    const uint64_t boundaryPage = (1ULL << 10) / kSectorsPerPage - 1;
    IoRequest w;
    w.type = IoType::Write;
    w.lba = boundaryPage * kSectorsPerPage;
    w.sectors = 2 * kSectorsPerPage;
    const uint64_t stamp = 500;
    dev.submitDetailed(w, kTimeZero, nullptr, &stamp, nullptr);
    uint64_t got = 0;
    ASSERT_TRUE(dev.peekPage(boundaryPage, &got));
    EXPECT_EQ(got, 500u);
    ASSERT_TRUE(dev.peekPage(boundaryPage + 1, &got));
    EXPECT_EQ(got, 501u);
}

TEST(SsdDeviceTest, OptimalModeIsFastAndFunctional)
{
    SsdConfig cfg = makePrototype(PrototypeVariant::Optimal);
    SsdDevice dev(cfg);
    const uint64_t stamp = 77;
    const auto w = dev.submitDetailed(makeWrite4k(5), kTimeZero, nullptr, &stamp,
                                      nullptr);
    EXPECT_LT(w.latency(), microseconds(30));
    uint64_t got = 0;
    dev.submitDetailed(makeRead4k(5), kTimeZero + microseconds(1), nullptr, nullptr,
                       &got);
    EXPECT_EQ(got, 77u);
    uint64_t peeked = 0;
    EXPECT_TRUE(dev.peekPage(5, &peeked));
    EXPECT_EQ(peeked, 77u);
}

TEST(SsdDeviceTest, TotalCountersAggregateVolumes)
{
    const SsdConfig cfg = twoVolumeCfg();
    SsdDevice dev(cfg);
    SimTime t;
    for (uint64_t p = 0; p < 20; ++p) {
        const auto res = dev.submit(makeWrite4k(p), t);
        t = res.completeTime;
        const auto r2 =
            dev.submit(makeWrite4k(p + (1ULL << 10) / kSectorsPerPage), t);
        t = r2.completeTime;
    }
    const VolumeCounters total = dev.totalCounters();
    EXPECT_EQ(total.writes, 40u);
    EXPECT_EQ(total.writes, dev.volumeCounters(0).writes +
                                dev.volumeCounters(1).writes);
    EXPECT_EQ(dev.volumeCounters(0).writes, 20u);
    EXPECT_EQ(dev.volumeCounters(1).writes, 20u);
}

#ifndef NDEBUG
TEST(SsdDeviceDeathTest, NonMonotoneSubmissionAsserts)
{
    SsdDevice dev(twoVolumeCfg());
    dev.submit(makeWrite4k(0), kTimeZero + microseconds(100));
    EXPECT_DEATH(dev.submit(makeWrite4k(1), kTimeZero + microseconds(50)),
                 "time-ordered");
}
#endif

/**
 * Property test over every Table-I preset: data written through the
 * full device (buffer -> flush -> FTL -> GC merges) always reads back
 * the newest stamp, and the FTL stays internally consistent.
 */
class PresetIntegrityTest : public ::testing::TestWithParam<SsdModel>
{
};

TEST_P(PresetIntegrityTest, RandomWorkloadPreservesData)
{
    SsdConfig cfg = makePreset(GetParam());
    cfg.userCapacityPages = 8192; // shrink so GC churns quickly
    cfg.volumeBits.clear();       // capacity too small for bit 17
    if (GetParam() == SsdModel::D)
        cfg.volumeBits = {8};
    else if (GetParam() == SsdModel::E)
        cfg.volumeBits = {8, 9};
    ASSERT_EQ(cfg.validate(), "");
    SsdDevice dev(cfg);

    sim::Rng rng(static_cast<uint64_t>(GetParam()) + 1);
    std::unordered_map<uint64_t, uint64_t> expected;
    SimTime t;
    uint64_t stamp = 1;
    for (int op = 0; op < 30000; ++op) {
        const uint64_t page = rng.nextBelow(cfg.userCapacityPages);
        if (rng.bernoulli(0.7)) {
            const uint64_t s = stamp++;
            const auto res = dev.submitDetailed(makeWrite4k(page), t,
                                                nullptr, &s, nullptr);
            expected[page] = s;
            t = res.completeTime;
        } else {
            uint64_t got = ~0ULL;
            const auto res = dev.submitDetailed(makeRead4k(page), t, nullptr,
                                                nullptr, &got);
            const auto it = expected.find(page);
            if (it != expected.end()) {
                EXPECT_EQ(got, it->second) << "page " << page;
            }
            t = res.completeTime;
        }
    }
    // Post-hoc: every written page holds its newest stamp.
    for (const auto &[page, s] : expected) {
        uint64_t got = 0;
        ASSERT_TRUE(dev.peekPage(page, &got));
        EXPECT_EQ(got, s);
    }
    for (uint32_t v = 0; v < cfg.numVolumes(); ++v)
        EXPECT_EQ(dev.volume(v).mapper().checkConsistency(), "");
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetIntegrityTest,
                         ::testing::ValuesIn(allModels()),
                         [](const auto &info) {
                             return "SSD_" + toString(info.param);
                         });

// ---------------------------------------------------------------------
// Request validation at the device boundary.
// ---------------------------------------------------------------------

TEST(SsdDeviceValidationTest, ZeroSectorRequestRejected)
{
    SsdDevice dev(twoVolumeCfg());
    IoRequest req = makeRead4k(0);
    req.sectors = 0;
    const auto res = dev.submit(req, kTimeZero + microseconds(10));
    EXPECT_EQ(res.status, blockdev::IoStatus::DeviceFault);
    EXPECT_FALSE(res.ok());
    // Rejected fast, with time still advancing (nonzero error latency).
    EXPECT_GT(res.completeTime, res.submitTime);
    EXPECT_EQ(dev.requestsServed(), 0u); // never reached the FTL
}

TEST(SsdDeviceValidationTest, OutOfCapacityRequestRejected)
{
    SsdDevice dev(twoVolumeCfg());
    // First sector past the end: off-by-one probes must not slip in.
    IoRequest req = makeWrite4k(0);
    req.lba = dev.capacitySectors() - kSectorsPerPage + 1;
    const auto res = dev.submit(req, kTimeZero);
    EXPECT_EQ(res.status, blockdev::IoStatus::DeviceFault);

    // The last fully in-range page is still fine.
    IoRequest last = makeWrite4k(dev.capacityPages() - 1);
    EXPECT_EQ(dev.submit(last, kTimeZero).status, blockdev::IoStatus::Ok);
}

TEST(SsdDeviceValidationTest, AddressOverflowRejected)
{
    SsdDevice dev(twoVolumeCfg());
    IoRequest req = makeRead4k(0);
    req.lba = ~0ULL - 2; // lba + sectors wraps around
    const auto res = dev.submit(req, kTimeZero);
    EXPECT_EQ(res.status, blockdev::IoStatus::DeviceFault);
}

TEST(SsdDeviceValidationTest, RejectionLeavesDeviceStateIntact)
{
    SsdDevice dev(twoVolumeCfg());
    const uint64_t stamp = 0x5eed;
    dev.submitDetailed(makeWrite4k(9), kTimeZero, nullptr, &stamp, nullptr);

    IoRequest bad = makeWrite4k(0);
    bad.lba = dev.capacitySectors(); // one page past the end
    dev.submit(bad, kTimeZero + microseconds(50));

    uint64_t got = 0;
    dev.submitDetailed(makeRead4k(9), kTimeZero + microseconds(100), nullptr, nullptr,
                       &got);
    EXPECT_EQ(got, stamp);
}

} // namespace
} // namespace ssdcheck::ssd
