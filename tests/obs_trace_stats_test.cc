/**
 * @file
 * Tests of the offline trace analytics behind `ssdcheck trace-stats`:
 * aggregation over a synthetic recorder (GC duty cycle per volume,
 * stall histogram, write-buffer hit rate, top-N longest host
 * requests) and both render formats.
 */
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace_recorder.h"
#include "obs/trace_stats.h"
#include "sim/sim_time.h"

namespace ssdcheck::obs {
namespace {

sim::SimTime
at(int64_t ns)
{
    return sim::SimTime(ns);
}

/** A hand-built trace covering every aggregate the scanner computes:
 *  span 0..10000ns, 3 gc.run spans (vol0 busy 400, vol1 busy 100),
 *  2 stalls (50ns, 5000ns), 3 wb hits vs 1 NAND read, 2 flushes and
 *  5 host requests whose longest carries full prediction args. */
void
fillTrace(TraceRecorder *rec)
{
    const TraceTrack vol0{kDevicePid, 0};
    const TraceTrack vol1{kDevicePid, 1};
    const TraceTrack iface{kDevicePid, kDeviceInterfaceTid};
    const TraceTrack host{kHostPid, kHostWorkloadTid};

    rec->complete("gc", "gc.run", vol0, at(0), 100);
    rec->complete("gc", "gc.run", vol0, at(200), 300);
    rec->complete("gc", "gc.run", vol1, at(600), 100);

    rec->instant("dev", "dev.stall", iface, at(1000), {{"dur_ns", 50}});
    rec->instant("dev", "dev.stall", iface, at(1100),
                 {{"dur_ns", 5000}});

    rec->instant("wb", "wb.hit", iface, at(2000));
    rec->instant("wb", "wb.hit", iface, at(2001));
    rec->instant("wb", "wb.hit", iface, at(2002));
    rec->instant("nand", "nand.read", iface, at(2100));
    rec->instant("wb", "wb.flush", iface, at(2200));
    rec->instant("wb", "wb.flush", iface, at(2300));

    rec->complete("host", "host.request", host, at(3000), 10);
    rec->complete("host", "host.request", host, at(3100), 20);
    rec->complete("host", "host.request", host, at(3200), 30);
    rec->complete("host", "host.request", host, at(3300), 40);
    rec->complete("host", "host.request", host, at(5000), 5000,
                  {{"lba", 42},
                   {"write", 1},
                   {"pred_hl", 1},
                   {"actual_hl", 0}});
}

TEST(TraceStatsTest, AggregatesSyntheticTrace)
{
    TraceRecorder rec;
    fillTrace(&rec);
    const TraceStats s = computeTraceStats(rec, 3);

    EXPECT_EQ(s.events, 16u);
    EXPECT_EQ(s.spanNs, 10000); // last host request ends at 10000ns.

    EXPECT_EQ(s.gcRuns, 3u);
    EXPECT_EQ(s.gcBusyNs, 500);
    EXPECT_EQ(s.gcDutyPermille, 50u);
    ASSERT_EQ(s.gcByVolume.size(), 2u);
    EXPECT_EQ(s.gcByVolume[0].volume, 0u);
    EXPECT_EQ(s.gcByVolume[0].runs, 2u);
    EXPECT_EQ(s.gcByVolume[0].busyNs, 400);
    EXPECT_EQ(s.gcByVolume[0].dutyPermille, 40u);
    EXPECT_EQ(s.gcByVolume[1].volume, 1u);
    EXPECT_EQ(s.gcByVolume[1].dutyPermille, 10u);

    EXPECT_EQ(s.stallCount, 2u);
    EXPECT_EQ(s.stallTotalNs, 5050);
    ASSERT_GE(s.stallHist.counts.size(), 2u);
    EXPECT_EQ(s.stallHist.counts[0], 1u); // 50ns <= 1us bucket.
    EXPECT_EQ(s.stallHist.counts[1], 1u); // 5000ns <= 10us bucket.
    EXPECT_EQ(s.stallHist.count, 2u);

    EXPECT_EQ(s.wbHits, 3u);
    EXPECT_EQ(s.nandReads, 1u);
    EXPECT_EQ(s.wbFlushes, 2u);
    EXPECT_EQ(s.wbHitPermille, 750u);

    // Top-3 of 5 requests: durations 5000, 40, 30 (desc).
    EXPECT_EQ(s.hostRequests, 5u);
    ASSERT_EQ(s.topRequests.size(), 3u);
    EXPECT_EQ(s.topRequests[0].durNs, 5000);
    EXPECT_EQ(s.topRequests[0].lba, 42);
    EXPECT_EQ(s.topRequests[0].write, 1);
    EXPECT_EQ(s.topRequests[0].predHl, 1);
    EXPECT_EQ(s.topRequests[0].actualHl, 0);
    EXPECT_EQ(s.topRequests[1].durNs, 40);
    EXPECT_EQ(s.topRequests[1].lba, -1); // recorded without args.
    EXPECT_EQ(s.topRequests[2].durNs, 30);
}

TEST(TraceStatsTest, EmptyRecorderYieldsZeroesNotCrashes)
{
    TraceRecorder rec;
    const TraceStats s = computeTraceStats(rec);
    EXPECT_EQ(s.events, 0u);
    EXPECT_EQ(s.spanNs, 0);
    EXPECT_EQ(s.gcByVolume.size(), 0u);
    EXPECT_EQ(s.topRequests.size(), 0u);
    EXPECT_FALSE(renderTraceStatsText(s).empty());
    EXPECT_FALSE(renderTraceStatsJson(s).empty());
}

TEST(TraceStatsTest, TextReportCarriesEveryAggregate)
{
    TraceRecorder rec;
    fillTrace(&rec);
    const std::string text =
        renderTraceStatsText(computeTraceStats(rec, 3));
    EXPECT_NE(text.find("16 events over 10000 ns"), std::string::npos);
    EXPECT_NE(text.find("3 runs, 500 ns busy (50 permille"),
              std::string::npos);
    EXPECT_NE(text.find("volume 0: 2 runs, 400 ns (40 permille)"),
              std::string::npos);
    EXPECT_NE(text.find("stalls: 2 events, 5050 ns total"),
              std::string::npos);
    EXPECT_NE(text.find("750 permille hit rate"), std::string::npos);
    EXPECT_NE(text.find("top 3 longest"), std::string::npos);
    EXPECT_NE(text.find("lba 42 write pred_hl 1 actual_hl 0"),
              std::string::npos);
}

TEST(TraceStatsTest, JsonReportIsIntegerOnlyAndComplete)
{
    TraceRecorder rec;
    fillTrace(&rec);
    const TraceStats s = computeTraceStats(rec, 3);
    const std::string json = renderTraceStatsJson(s);
    EXPECT_NE(json.find("\"events\":16"), std::string::npos);
    EXPECT_NE(json.find("\"span_ns\":10000"), std::string::npos);
    EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"duty_permille\":50"), std::string::npos);
    EXPECT_NE(json.find("\"count\":2,\"total_ns\":5050"),
              std::string::npos);
    EXPECT_NE(json.find("\"hits\":3,\"nand_reads\":1,"
                        "\"hit_permille\":750,\"flushes\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"lba\":42,\"write\":1,\"pred_hl\":1,"
                        "\"actual_hl\":0"),
              std::string::npos);
    // Determinism: the report is a pure function of the trace.
    EXPECT_EQ(json, renderTraceStatsJson(computeTraceStats(rec, 3)));
    EXPECT_EQ(json.find('.'), std::string::npos); // integers only.
}

} // namespace
} // namespace ssdcheck::obs
