/** @file Tests for the model-component ablation switches. */
#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "workload/synthetic.h"

namespace ssdcheck::core {
namespace {

FeatureSet
twoVolumeFeatures()
{
    FeatureSet fs;
    fs.allocationVolumeBits = {17};
    fs.gcVolumeBits = {17};
    fs.bufferBytes = 128 * 1024;
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = sim::microseconds(400);
    return fs;
}

TEST(AblationTest, VolumeModelOffCollapsesToOneVolume)
{
    RuntimeConfig rc;
    rc.useVolumeModel = false;
    SsdCheck check(twoVolumeFeatures(), rc);
    ASSERT_NE(check.engine(), nullptr);
    EXPECT_EQ(check.engine()->numVolumes(), 1u);
}

TEST(AblationTest, VolumeModelOnUsesDiagnosedBits)
{
    SsdCheck check(twoVolumeFeatures());
    ASSERT_NE(check.engine(), nullptr);
    EXPECT_EQ(check.engine()->numVolumes(), 2u);
}

TEST(AblationTest, GcModelOffNeverExpectsGc)
{
    RuntimeConfig rc;
    rc.useGcModel = false;
    SsdCheck check(twoVolumeFeatures(), rc);
    // Feed plenty of observed GC events: still no expectation.
    Prediction hl;
    hl.hl = true;
    for (int i = 0; i < 50; ++i) {
        check.onSubmit(blockdev::makeWrite4k(0), sim::SimTime{i * 1000});
        check.onComplete(blockdev::makeWrite4k(0), hl,
                         sim::SimTime{i * 1000},
                         sim::SimTime{i * 1000} + sim::milliseconds(20));
    }
    EXPECT_FALSE(check.engine()->gcModel(0).gcExpectedOnNextFlush());
}

TEST(AblationTest, CalibratorOffSkipsResync)
{
    RuntimeConfig rc;
    rc.useCalibrator = false;
    SsdCheck check(twoVolumeFeatures(), rc);
    // Two consecutive unexpected HL writes would normally resync the
    // buffer counter to zero; with the calibrator off they must not.
    check.onSubmit(blockdev::makeWrite4k(0), sim::kTimeZero);
    check.onSubmit(blockdev::makeWrite4k(1), sim::kTimeZero);
    Prediction nl; // predicted NL, observed HL
    check.onComplete(blockdev::makeWrite4k(2), nl, sim::kTimeZero,
                     sim::kTimeZero + sim::microseconds(900));
    check.onComplete(blockdev::makeWrite4k(3), nl,
                     sim::kTimeZero + sim::milliseconds(1),
                     sim::kTimeZero + sim::milliseconds(2));
    EXPECT_EQ(check.engine()->wbModel(0).counter(), 2u);
}

TEST(AblationTest, VolumeModelMattersOnMultiVolumeDevice)
{
    // End-to-end: on SSD E (4 volumes), disabling the volume model
    // must wreck HL accuracy (paper §V-B: "extremely low").
    auto run = [&](bool useVolumeModel) {
        ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::E));
        DiagnosisRunner runner(dev, DiagnosisConfig{});
        const FeatureSet fs = runner.extractFeatures();
        RuntimeConfig rc;
        rc.useVolumeModel = useVolumeModel;
        SsdCheck check(fs, rc);
        const auto trace = workload::buildRwMixedTrace(
            80000, dev.capacityPages(), 21);
        return evaluatePredictionAccuracy(dev, check, trace, runner.now())
            .hlAccuracy();
    };
    const double with = run(true);
    const double without = run(false);
    EXPECT_GT(with, without * 2.0);
    EXPECT_LT(without, 0.25);
}

} // namespace
} // namespace ssdcheck::core
