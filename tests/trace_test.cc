/** @file Unit tests for workload/trace.h. */
#include <gtest/gtest.h>

#include "workload/trace.h"

namespace ssdcheck::workload {
namespace {

using blockdev::IoRequest;
using blockdev::IoType;
using blockdev::kSectorsPerPage;

IoRequest
req(IoType t, uint64_t page, uint32_t pages = 1)
{
    IoRequest r;
    r.type = t;
    r.lba = page * kSectorsPerPage;
    r.sectors = pages * kSectorsPerPage;
    return r;
}

TEST(TraceTest, AddAndIndex)
{
    Trace t("demo");
    t.add(req(IoType::Write, 1));
    t.add(req(IoType::Read, 2));
    EXPECT_EQ(t.name(), "demo");
    EXPECT_EQ(t.size(), 2u);
    EXPECT_TRUE(t[0].req.isWrite());
    EXPECT_TRUE(t[1].req.isRead());
}

TEST(TraceTest, CharacterizeCountsWrites)
{
    Trace t;
    t.add(req(IoType::Write, 0));
    t.add(req(IoType::Write, 10));
    t.add(req(IoType::Read, 20));
    t.add(req(IoType::Write, 30));
    const TraceStats s = t.characterize();
    EXPECT_EQ(s.requests, 4u);
    EXPECT_DOUBLE_EQ(s.writeFraction, 0.75);
    EXPECT_EQ(s.totalBytes, 4u * 4096);
}

TEST(TraceTest, CharacterizeRandomness)
{
    // Perfectly sequential run: only the first request is "random".
    Trace seq;
    for (uint64_t p = 0; p < 10; ++p)
        seq.add(req(IoType::Write, p));
    EXPECT_DOUBLE_EQ(seq.characterize().randomFraction, 0.1);

    // Strided accesses: everything is random.
    Trace rnd;
    for (uint64_t p = 0; p < 10; ++p)
        rnd.add(req(IoType::Write, p * 5));
    EXPECT_DOUBLE_EQ(rnd.characterize().randomFraction, 1.0);
}

TEST(TraceTest, CharacterizeSequentialWithMixedSizes)
{
    // Multi-page request followed by its adjacent successor counts
    // as sequential.
    Trace t;
    t.add(req(IoType::Write, 0, 4));
    t.add(req(IoType::Write, 4, 1));
    const TraceStats s = t.characterize();
    EXPECT_DOUBLE_EQ(s.randomFraction, 0.5); // only the first
}

TEST(TraceTest, PoissonArrivalsAreMonotoneAndRoughlyRate)
{
    Trace t;
    for (int i = 0; i < 20000; ++i)
        t.add(req(IoType::Read, i % 100));
    sim::Rng rng(1);
    t.assignPoissonArrivals(10000.0, rng); // 10k IOPS
    sim::SimDuration prev = -1;
    for (const auto &r : t.records()) {
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
    }
    // Mean inter-arrival ~100us -> span ~2s.
    const double spanSec = sim::toSeconds(t.records().back().arrival);
    EXPECT_NEAR(spanSec, 2.0, 0.1);
}

TEST(TraceTest, TruncateShortens)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.add(req(IoType::Write, i));
    t.truncate(3);
    EXPECT_EQ(t.size(), 3u);
    t.truncate(100); // no-op
    EXPECT_EQ(t.size(), 3u);
}

TEST(TraceTest, EmptyTraceCharacterize)
{
    Trace t;
    const TraceStats s = t.characterize();
    EXPECT_EQ(s.requests, 0u);
    EXPECT_EQ(s.writeFraction, 0.0);
}

} // namespace
} // namespace ssdcheck::workload
