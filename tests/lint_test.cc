/**
 * @file
 * Tests for ssdcheck_lint itself, against the fixture tree under
 * tests/lint_fixtures/. Each fixture case is a miniature repo root
 * (src/<dir>/file), so the rules see the same relative paths they
 * scope on in the real tree. The engine is exercised in-process for
 * exact rule IDs/lines, and through the installed binary for exit
 * codes and output format.
 *
 * Build wiring provides:
 *   SSDCHECK_LINT_FIXTURES  absolute path of tests/lint_fixtures
 *   SSDCHECK_LINT_BIN       absolute path of the ssdcheck_lint binary
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace lint = ssdcheck::lint;

namespace {

std::string
fixtureRoot(const std::string &caseName)
{
    return std::string(SSDCHECK_LINT_FIXTURES) + "/" + caseName;
}

lint::LintResult
runCase(const std::string &caseName)
{
    return lint::runLint(fixtureRoot(caseName), {"src"});
}

std::vector<std::string>
ruleIds(const lint::LintResult &r)
{
    std::vector<std::string> ids;
    ids.reserve(r.findings.size());
    for (const auto &f : r.findings)
        ids.push_back(f.rule);
    return ids;
}

/** Run the real binary; returns its exit code, captures stdout. */
int
runBinary(const std::string &args, std::string *out)
{
    const std::string cmd =
        std::string(SSDCHECK_LINT_BIN) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (pipe == nullptr)
        return -1;
    char buf[512];
    std::ostringstream os;
    while (fgets(buf, sizeof buf, pipe) != nullptr)
        os << buf;
    if (out != nullptr)
        *out = os.str();
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

TEST(LintRules, CleanFixtureHasNoFindings)
{
    const lint::LintResult r = runCase("clean");
    EXPECT_EQ(r.filesScanned, 2u);
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, WallClockFlaggedInDeterministicDirs)
{
    const lint::LintResult r = runCase("wallclock");
    ASSERT_EQ(r.findings.size(), 2u);
    EXPECT_EQ(r.findings[0].rule, "wall-clock");
    EXPECT_EQ(r.findings[0].file, "src/ssd/bad_clock.cc");
    EXPECT_EQ(r.findings[0].line, 11u); // steady_clock
    EXPECT_EQ(r.findings[1].rule, "wall-clock");
    EXPECT_EQ(r.findings[1].line, 18u); // rand()
}

TEST(LintRules, WallClockAllowedInPerfLayer)
{
    const lint::LintResult r = runCase("wallclock_allowed");
    EXPECT_TRUE(r.findings.empty());
}

TEST(LintRules, WallClockStillFlaggedInObsOutsideExporter)
{
    // The exporter carve-out must not widen to the rest of src/obs.
    const lint::LintResult r = runCase("wallclock_obs");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "wall-clock");
    EXPECT_EQ(r.findings[0].file, "src/obs/tick.cc");
}

TEST(LintRules, WallClockAllowedInObsExporter)
{
    const lint::LintResult r = runCase("wallclock_exporter");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, UnorderedIterationFlaggedBothForms)
{
    const lint::LintResult r = runCase("unordered");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "unordered-iter");
        EXPECT_EQ(f.file, "src/core/iter.cc");
    }
    EXPECT_EQ(r.findings[0].line, 12u); // range-for
    EXPECT_EQ(r.findings[1].line, 14u); // counts.begin()
}

TEST(LintRules, ReasonedSuppressionAbsorbsFinding)
{
    const lint::LintResult r = runCase("unordered_suppressed");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, ReasonlessSuppressionAbsorbsNothingAndIsReported)
{
    const lint::LintResult r = runCase("unordered_noreason");
    const std::vector<std::string> ids = ruleIds(r);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], "suppression");
    EXPECT_EQ(ids[1], "unordered-iter");
    EXPECT_EQ(r.findings[0].line, r.findings[1].line);
}

TEST(LintRules, StdFunctionFlaggedOnHotPathOnly)
{
    const lint::LintResult bad = runCase("stdfunction");
    ASSERT_EQ(bad.findings.size(), 1u);
    EXPECT_EQ(bad.findings[0].rule, "std-function");
    EXPECT_EQ(bad.findings[0].file, "src/sim/callback.cc");

    const lint::LintResult ok = runCase("stdfunction_outside");
    EXPECT_TRUE(ok.findings.empty());
}

TEST(LintRules, ConsoleIoFlaggedInLibraryDirs)
{
    const lint::LintResult r = runCase("consoleio");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "console-io");
        EXPECT_EQ(f.file, "src/ssd/chatty.cc");
    }
    EXPECT_EQ(r.findings[0].line, 10u); // std::cout
    EXPECT_EQ(r.findings[1].line, 16u); // std::printf(; snprintf legal
}

TEST(LintRules, ConsoleIoAllowedInReportingLayer)
{
    const lint::LintResult r = runCase("consoleio_allowed");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, IncludeGuardHeaderNeedsPragmaOnce)
{
    const lint::LintResult r = runCase("pragma");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "header-hygiene");
    EXPECT_EQ(r.findings[0].file, "src/core/guarded.h");
}

TEST(LintRules, HeaderMustIncludeWhatItNames)
{
    const lint::LintResult r = runCase("missinginc");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "header-hygiene");
    EXPECT_NE(r.findings[0].message.find("<vector>"), std::string::npos);
}

TEST(LintRules, NodiscardRequiredOnStatusReturningHeaderApis)
{
    const lint::LintResult r = runCase("nodiscard");
    ASSERT_EQ(r.findings.size(), 2u);
    bool sawSubmit = false;
    bool sawRestore = false;
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "nodiscard");
        EXPECT_EQ(f.file, "src/blockdev/dev.h");
        sawSubmit |= f.message.find("`submit` returns IoResult") !=
                     std::string::npos;
        sawRestore |= f.message.find("`restore` returns LoadError") !=
                      std::string::npos;
    }
    EXPECT_TRUE(sawSubmit) << r.findings[0].format();
    EXPECT_TRUE(sawRestore) << r.findings[1].format();
}

TEST(LintRules, NodiscardAnnotatedAndExpressionUsesPass)
{
    const lint::LintResult r = runCase("nodiscard_clean");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, HeapAllocFlaggedInAllocationFreeCore)
{
    const lint::LintResult r = runCase("heapalloc");
    ASSERT_EQ(r.findings.size(), 3u);
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "heap-alloc");
        EXPECT_EQ(f.file, "src/sim/alloc.cc");
    }
    EXPECT_EQ(r.findings[0].line, 14u); // new int(42)
    EXPECT_EQ(r.findings[1].line, 20u); // make_unique
    EXPECT_EQ(r.findings[2].line, 26u); // make_shared
}

TEST(LintRules, HeapAllocExemptsPlacementNewAndPreprocessor)
{
    const lint::LintResult r = runCase("heapalloc_placement");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, HeapAllocScopedToCoreDirsAndHotFtlFiles)
{
    // src/ssd files other than the three FTL hot files are out of
    // scope: construction-time allocation is fine there.
    const lint::LintResult r = runCase("heapalloc_outside");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintRules, HeapAllocReasonedSuppressionAbsorbsFinding)
{
    const lint::LintResult r = runCase("heapalloc_allowed");
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintSnapshotRule, MissingFieldsFlaggedPerBody)
{
    const lint::LintResult r = runCase("snapshot_missing");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "snapshot-coverage");
        EXPECT_EQ(f.file, "src/ssd/cache.h");
    }
    // hits_ is restored but never saved; misses_ appears in neither.
    EXPECT_EQ(r.findings[0].line, 26u);
    EXPECT_NE(r.findings[0].message.find("`Cache::hits_`"),
              std::string::npos)
        << r.findings[0].format();
    EXPECT_NE(r.findings[0].message.find("saveState"), std::string::npos);
    EXPECT_EQ(r.findings[0].message.find("loadState"), std::string::npos);
    EXPECT_EQ(r.findings[1].line, 27u);
    EXPECT_NE(r.findings[1].message.find("`Cache::misses_`"),
              std::string::npos)
        << r.findings[1].format();
    EXPECT_NE(r.findings[1].message.find("saveState or loadState"),
              std::string::npos);
}

TEST(LintSnapshotRule, ReasonedSkipsAndOutOfLineBodiesPass)
{
    // Bodies live in store.cc; members in store.h. Skipped members
    // carry reasons, used_ is referenced in both bodies.
    const lint::LintResult r = runCase("snapshot_clean");
    EXPECT_EQ(r.filesScanned, 2u);
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintSnapshotRule, ReasonlessSkipIsReported)
{
    const lint::LintResult r = runCase("snapshot_noreason");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "snapshot-coverage");
    EXPECT_EQ(r.findings[0].line, 25u);
    EXPECT_NE(r.findings[0].message.find("needs a reason"),
              std::string::npos)
        << r.findings[0].format();
}

TEST(LintSnapshotRule, DetachedMarkersAreReported)
{
    // A marker above the class head and one inside a method body
    // annotate no member; both are dead and must be called out.
    const lint::LintResult r = runCase("snapshot_orphan");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "snapshot-coverage");
        EXPECT_NE(f.message.find("not attached"), std::string::npos)
            << f.format();
    }
    EXPECT_EQ(r.findings[0].line, 7u);
    EXPECT_EQ(r.findings[1].line, 13u);
}

TEST(LintTypedIdsRule, RawIdParamsFlaggedInPublicHeaderApis)
{
    const lint::LintResult r = runCase("typedids");
    ASSERT_EQ(r.findings.size(), 3u);
    bool sawLpn = false;
    bool sawPpn = false;
    bool sawPbn = false;
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.rule, "typed-ids");
        EXPECT_EQ(f.file, "src/ssd/api.h");
        sawLpn |= f.message.find("core::Lpn") != std::string::npos;
        sawPpn |= f.message.find("nand::Ppn") != std::string::npos;
        sawPbn |= f.message.find("nand::Pbn") != std::string::npos;
    }
    EXPECT_TRUE(sawLpn && sawPpn && sawPbn);
    // The public method (line 10, twice) and the free function
    // (line 17); the private `translate` on line 14 is not public API.
    EXPECT_EQ(r.findings[0].line, 10u);
    EXPECT_EQ(r.findings[1].line, 10u);
    EXPECT_EQ(r.findings[2].line, 17u);
}

TEST(LintTypedIdsRule, StrongTypesNonHeadersAndOtherDirsPass)
{
    const lint::LintResult r = runCase("typedids_clean");
    EXPECT_EQ(r.filesScanned, 3u);
    EXPECT_TRUE(r.findings.empty())
        << (r.findings.empty() ? "" : r.findings[0].format());
}

TEST(LintSnapshotRule, PlantedWriteBufferFieldFailsLint)
{
    // The end-to-end story R8 exists for: add a field to a live
    // snapshot class, forget the serialization, and the tree must
    // stop being lint-clean. Copy the real WriteBuffer pair into a
    // scratch root and plant an unserialized member.
    namespace fs = std::filesystem;
    const std::string fixtures(SSDCHECK_LINT_FIXTURES);
    const fs::path repoRoot = fixtures.substr(0, fixtures.rfind("/tests/"));
    const fs::path root =
        fs::path(::testing::TempDir()) / "ssdcheck_lint_planted";
    fs::remove_all(root);
    fs::create_directories(root / "src/ssd");
    fs::copy_file(repoRoot / "src/ssd/write_buffer.cc",
                  root / "src/ssd/write_buffer.cc");
    std::ifstream in(repoRoot / "src/ssd/write_buffer.h");
    ASSERT_TRUE(in.is_open());
    std::ofstream out(root / "src/ssd/write_buffer.h");
    std::string line;
    bool planted = false;
    while (std::getline(in, line)) {
        out << line << "\n";
        if (!planted && line.find("uint32_t gen_") != std::string::npos) {
            out << "    uint64_t plantedTelemetry_ = 0;\n";
            planted = true;
        }
    }
    ASSERT_TRUE(planted) << "anchor member gen_ not found";
    out.close();

    const lint::LintResult r = lint::runLint(root.string(), {"src"});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "snapshot-coverage");
    EXPECT_NE(
        r.findings[0].message.find("`WriteBuffer::plantedTelemetry_`"),
        std::string::npos)
        << r.findings[0].format();
}

TEST(LintBinary, ExitCodesAndOutputFormat)
{
    std::string out;
    EXPECT_EQ(runBinary("--root " + fixtureRoot("clean") + " src", &out), 0);
    EXPECT_TRUE(out.empty()) << out;

    EXPECT_EQ(runBinary("--root " + fixtureRoot("wallclock") + " src", &out),
              1);
    // Canonical file:line: rule-id: message form.
    EXPECT_NE(out.find("src/ssd/bad_clock.cc:11: wall-clock:"),
              std::string::npos)
        << out;

    EXPECT_EQ(runBinary("--root " + fixtureRoot("clean") + " nonexistent",
                        nullptr),
              2);
}

TEST(LintBinary, JsonAndGithubFormats)
{
    std::string out;
    EXPECT_EQ(runBinary("--root " + fixtureRoot("typedids") +
                            " --format=json src",
                        &out),
              1);
    EXPECT_NE(out.find("\"filesScanned\": 1"), std::string::npos) << out;
    EXPECT_NE(out.find("\"rule\": \"typed-ids\""), std::string::npos)
        << out;

    EXPECT_EQ(runBinary("--root " + fixtureRoot("typedids") +
                            " --format=github src",
                        &out),
              1);
    EXPECT_NE(out.find("::error file=src/ssd/api.h,line=10,"),
              std::string::npos)
        << out;
}

TEST(LintBinary, OutputIdenticalAtAnyJobsValue)
{
    std::string serial;
    std::string parallel;
    EXPECT_EQ(runBinary("--root " + fixtureRoot("typedids") +
                            " --jobs 1 src",
                        &serial),
              1);
    EXPECT_EQ(runBinary("--root " + fixtureRoot("typedids") +
                            " --jobs 8 src",
                        &parallel),
              1);
    EXPECT_EQ(serial, parallel);
}

TEST(LintBinary, RealTreeIsCleanRightNow)
{
    // The acceptance gate, as a test: zero unsuppressed findings in
    // the live src/ and tools/ trees. SSDCHECK_LINT_FIXTURES is
    // <repo>/tests/lint_fixtures, so the repo root is two up.
    const std::string fixtures(SSDCHECK_LINT_FIXTURES);
    const std::string repoRoot =
        fixtures.substr(0, fixtures.rfind("/tests/"));
    std::string out;
    EXPECT_EQ(runBinary("--root " + repoRoot + " src tools", &out), 0)
        << out;
}
