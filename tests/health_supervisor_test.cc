/**
 * @file Deterministic tests for every edge of the health-supervisor
 * state machine:
 *
 *   Healthy -> Suspect            (detector fires)
 *   Suspect -> Healthy            (false alarm clears)
 *   Suspect -> Degraded           (confirm streak)
 *   Degraded -> Rediagnosing      (first pump)
 *   Rediagnosing -> Recovered     (flush period recovered, hot-swap)
 *   Rediagnosing -> Disabled      (attempts exhausted, terminal)
 *   Recovered -> Suspect          (probation relapse)
 *   Recovered -> Healthy          (probation passes)
 *
 * Detector inputs are driven by fabricated completions (latency
 * decides the NL/HL class), so each edge is reached deterministically
 * without a real device; the probe path is exercised separately
 * against a simulated SSD.
 */
#include <gtest/gtest.h>

#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::core {
namespace {

using blockdev::IoRequest;
using blockdev::IoResult;
using blockdev::IoStatus;
using blockdev::makeWrite4k;
using sim::microseconds;
using sim::milliseconds;

/** Minimal usable feature set (mirrors ssdcheck_facade_test). */
FeatureSet
usableFeatures()
{
    FeatureSet fs;
    fs.bufferBytes = 16 * 4096;
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(1);
    return fs;
}

/** Small accuracy window so detector state turns over quickly. */
RuntimeConfig
fastRuntime()
{
    RuntimeConfig rt;
    rt.accuracyWindow = 50;
    return rt;
}

/**
 * Supervisor tuned for unit tests: only the accuracy detector armed
 * (shift test and resync churn are exercised by the e2e test), zero
 * probe budget so re-diagnosis runs purely on passive observations.
 */
HealthSupervisorConfig
passiveCfg()
{
    HealthSupervisorConfig cfg;
    cfg.evalInterval = 50;
    cfg.minHlEvents = 20;
    cfg.suspectResyncBurst = 1000000; // resync detector off
    cfg.shiftPValue = 0.0;            // shift detector off
    cfg.confirmSweeps = 2;
    cfg.clearSweeps = 3;
    cfg.probeBudgetFraction = 0.0; // probes never issue
    cfg.probeFlushEvents = 24;
    cfg.probationWindow = 200;
    return cfg;
}

/** A small fast simulated SSD for the probe tests. */
ssd::SsdConfig
probeDeviceCfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 16 * 1024;
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.opRatio = 0.3;
    c.gcLowBlocks = 3;
    c.gcHighBlocks = 6;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

/** Test harness: facade + device + supervisor + a virtual clock. */
struct Rig
{
    ssd::SsdDevice dev{probeDeviceCfg()};
    SsdCheck check{usableFeatures(), fastRuntime()};
    HealthSupervisor sup;
    sim::SimTime t = sim::kTimeZero + microseconds(1);

    explicit Rig(HealthSupervisorConfig cfg = passiveCfg())
        : sup(check, dev, cfg)
    {
    }

    /**
     * Feed @p n fabricated completions of latency @p lat with an NL
     * prediction each (so an HL latency scores as a miss).
     */
    void feed(int n, sim::SimDuration lat)
    {
        for (int i = 0; i < n; ++i) {
            const IoRequest req = makeWrite4k(1);
            const Prediction pred; // NL
            const bool hl =
                check.onComplete(req, pred, t, t + lat, IoStatus::Ok, 1);
            IoResult res;
            res.submitTime = t;
            res.completeTime = t + lat;
            sup.onCompletion(req, hl, res);
            t += lat + microseconds(50);
        }
    }

    /** Drive the supervisor from Healthy to a confirmed Degraded. */
    void collapse()
    {
        feed(150, milliseconds(1));
        ASSERT_EQ(sup.state(), HealthState::Degraded);
    }
};

constexpr sim::SimDuration kNl = microseconds(100);
constexpr sim::SimDuration kHl = milliseconds(1);

TEST(HealthSupervisorTest, StartsHealthyAndStaysSoOnGoodModel)
{
    Rig rig;
    rig.feed(500, kNl);
    EXPECT_EQ(rig.sup.state(), HealthState::Healthy);
    EXPECT_EQ(rig.sup.counters().suspectEntries, 0u);
    EXPECT_GT(rig.sup.counters().sweeps, 0u);
}

TEST(HealthSupervisorTest, AccuracyCollapseEntersSuspect)
{
    Rig rig;
    // One sweep interval of mispredicted HLs: accuracy 0 < 0.40.
    rig.feed(60, kHl);
    EXPECT_EQ(rig.sup.state(), HealthState::Suspect);
    EXPECT_EQ(rig.sup.counters().suspectEntries, 1u);
    EXPECT_GE(rig.sup.counters().accuracyCollapses, 1u);
    // Suspect alone never quarantines the model.
    EXPECT_FALSE(rig.check.degraded());
}

TEST(HealthSupervisorTest, FalseAlarmClearsBackToHealthy)
{
    Rig rig;
    rig.feed(60, kHl);
    ASSERT_EQ(rig.sup.state(), HealthState::Suspect);
    // The workload returns to normal: the HL misses age out of the
    // (50-deep) window and three clean sweeps clear the alarm.
    rig.feed(300, kNl);
    EXPECT_EQ(rig.sup.state(), HealthState::Healthy);
    EXPECT_EQ(rig.sup.counters().falseAlarms, 1u);
    EXPECT_EQ(rig.sup.counters().degradedEntries, 0u);
}

TEST(HealthSupervisorTest, ConfirmedCollapseDegradesAndQuarantines)
{
    Rig rig;
    rig.collapse();
    EXPECT_EQ(rig.sup.counters().degradedEntries, 1u);
    // Quarantine: the facade now answers conservative NL everywhere.
    EXPECT_TRUE(rig.check.degraded());
    const Prediction p = rig.check.predict(makeWrite4k(5), rig.t);
    EXPECT_FALSE(p.hl);
}

TEST(HealthSupervisorTest, DegradedPredictionsMatchDisabledBaseline)
{
    // Degraded mode must be *harmless*: indistinguishable from the
    // paper's disabled model (never a false HL flag).
    SsdCheck degraded(usableFeatures(), fastRuntime());
    degraded.setDegraded(true);
    SsdCheck disabled(usableFeatures(), fastRuntime());
    disabled.forceDisable();
    for (uint64_t page : {0ULL, 7ULL, 123ULL}) {
        for (const auto &req :
             {blockdev::makeRead4k(page), makeWrite4k(page)}) {
            const Prediction pd =
                degraded.predict(req, sim::kTimeZero + microseconds(10));
            const Prediction px =
                disabled.predict(req, sim::kTimeZero + microseconds(10));
            EXPECT_FALSE(pd.hl);
            EXPECT_EQ(pd.eet, px.eet);
        }
    }
}

TEST(HealthSupervisorTest, FirstPumpStartsRediagnosis)
{
    Rig rig;
    rig.collapse();
    rig.t = rig.sup.pump(rig.t);
    EXPECT_EQ(rig.sup.state(), HealthState::Rediagnosing);
    EXPECT_EQ(rig.sup.counters().rediagnoseAttempts, 1u);
    // Zero budget: the probe slots were declined, not issued.
    EXPECT_EQ(rig.sup.counters().probesIssued, 0u);
    EXPECT_GE(rig.sup.counters().probesDeferred, 1u);
}

TEST(HealthSupervisorTest, PassiveFlushEventsHotSwapTheModel)
{
    Rig rig;
    rig.collapse();
    rig.t = rig.sup.pump(rig.t);
    ASSERT_EQ(rig.sup.state(), HealthState::Rediagnosing);

    // The live workload exposes the device's true period: every 8th
    // write blocks on a flush. The supervisor needs probeFlushEvents
    // boundaries to resolve, all collected without any probe I/O.
    for (int burst = 0; burst < 30 &&
                        rig.sup.state() == HealthState::Rediagnosing;
         ++burst) {
        rig.feed(7, kNl);
        rig.feed(1, kHl);
    }
    EXPECT_EQ(rig.sup.state(), HealthState::Recovered);
    EXPECT_EQ(rig.sup.counters().hotSwaps, 1u);
    EXPECT_EQ(rig.sup.lastSwapPages(), 8u);
    EXPECT_EQ(rig.check.features().bufferBytes, 8u * 4096);
    EXPECT_FALSE(rig.check.degraded());
    EXPECT_TRUE(rig.check.enabled());
}

TEST(HealthSupervisorTest, ProbationRelapseReturnsToSuspect)
{
    Rig rig;
    rig.collapse();
    rig.t = rig.sup.pump(rig.t);
    for (int burst = 0; burst < 30 &&
                        rig.sup.state() == HealthState::Rediagnosing;
         ++burst) {
        rig.feed(7, kNl);
        rig.feed(1, kHl);
    }
    ASSERT_EQ(rig.sup.state(), HealthState::Recovered);

    // The swapped model also mispredicts: relapse, not recovery.
    for (int i = 0; i < 20 && rig.sup.state() == HealthState::Recovered;
         ++i)
        rig.feed(10, kHl);
    EXPECT_EQ(rig.sup.state(), HealthState::Suspect);
    EXPECT_EQ(rig.sup.counters().relapses, 1u);
    EXPECT_EQ(rig.sup.counters().recoveries, 0u);
}

TEST(HealthSupervisorTest, ProbationPassReturnsToHealthy)
{
    Rig rig;
    rig.collapse();
    rig.t = rig.sup.pump(rig.t);
    for (int burst = 0; burst < 30 &&
                        rig.sup.state() == HealthState::Rediagnosing;
         ++burst) {
        rig.feed(7, kNl);
        rig.feed(1, kHl);
    }
    ASSERT_EQ(rig.sup.state(), HealthState::Recovered);

    // probationWindow clean completions with no detector firing.
    rig.feed(300, kNl);
    EXPECT_EQ(rig.sup.state(), HealthState::Healthy);
    EXPECT_EQ(rig.sup.counters().recoveries, 1u);
    EXPECT_EQ(rig.sup.counters().relapses, 0u);
}

TEST(HealthSupervisorTest, ExhaustedAttemptsDisableTerminally)
{
    HealthSupervisorConfig cfg = passiveCfg();
    cfg.probeFlushEvents = 1000;        // never enough events
    cfg.maxProbeWritesPerAttempt = 100; // attempts fail quickly
    cfg.maxRediagnoses = 2;
    Rig rig(cfg);
    rig.collapse();
    rig.t = rig.sup.pump(rig.t);
    ASSERT_EQ(rig.sup.state(), HealthState::Rediagnosing);

    // Flush-free writes burn through both attempts.
    while (rig.sup.state() == HealthState::Rediagnosing)
        rig.feed(10, kNl);

    EXPECT_EQ(rig.sup.state(), HealthState::Disabled);
    EXPECT_EQ(rig.sup.counters().rediagnoseFailures, 2u);
    EXPECT_EQ(rig.sup.counters().hotSwaps, 0u);
    // Terminal: prediction is off for good and harmless.
    EXPECT_FALSE(rig.check.enabled());
    EXPECT_FALSE(rig.check.predict(makeWrite4k(1), rig.t).hl);

    // Further completions and pumps are inert.
    const auto before = rig.sup.counters().sweeps;
    rig.feed(200, kHl);
    rig.t = rig.sup.pump(rig.t);
    EXPECT_EQ(rig.sup.state(), HealthState::Disabled);
    EXPECT_EQ(rig.sup.counters().sweeps, before);
}

TEST(HealthSupervisorTest, ActiveProbingRecoversAgainstRealDevice)
{
    // Against the real simulated SSD (8-page buffer) with a 16-page
    // stale model: probe I/O alone must rebuild the buffer feature.
    HealthSupervisorConfig cfg = passiveCfg();
    cfg.probeBudgetFraction = 0.10;
    Rig rig(cfg);
    rig.dev.precondition();
    rig.collapse();

    int pumps = 0;
    while (rig.sup.state() != HealthState::Recovered && pumps < 200000) {
        rig.t = rig.sup.pump(rig.t);
        rig.t += microseconds(500);
        ++pumps;
    }
    ASSERT_EQ(rig.sup.state(), HealthState::Recovered);
    EXPECT_GT(rig.sup.counters().probesIssued, 0u);
    EXPECT_GT(rig.sup.counters().probeWrites, 0u);
    EXPECT_EQ(rig.sup.counters().hotSwaps, 1u);
    // The probed estimate matches the device's true 8-page buffer.
    EXPECT_EQ(rig.sup.lastSwapPages(), 8u);

    // Probe I/O stayed within its device-time budget (one probe of
    // slack: the check is evaluated before each submission).
    const auto &c = rig.sup.counters();
    const sim::SimDuration elapsed =
        rig.t - (sim::kTimeZero + microseconds(1));
    EXPECT_LE(static_cast<double>(c.probeBusyNs),
              cfg.probeBudgetFraction * static_cast<double>(elapsed) +
                  static_cast<double>(milliseconds(50)));
}

TEST(HealthSupervisorTest, ReportNamesTheStateAndCounters)
{
    Rig rig;
    rig.collapse();
    const std::string rep = rig.sup.report();
    EXPECT_NE(rep.find("degraded"), std::string::npos);
    EXPECT_NE(rep.find("re-diagnoses"), std::string::npos);
    EXPECT_NE(rep.find("probe i/o"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::core
