/** @file Unit tests for stats/histogram.h. */
#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace ssdcheck::stats {
namespace {

TEST(HistogramTest, BinIndexMapsValuesToBins)
{
    Histogram h(0, 10, 5);
    EXPECT_EQ(h.binIndex(0), 0u);
    EXPECT_EQ(h.binIndex(9), 0u);
    EXPECT_EQ(h.binIndex(10), 1u);
    EXPECT_EQ(h.binIndex(49), 4u);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdges)
{
    Histogram h(100, 10, 4);
    EXPECT_EQ(h.binIndex(-5), 0u);
    EXPECT_EQ(h.binIndex(50), 0u);
    EXPECT_EQ(h.binIndex(1000), 3u);
}

TEST(HistogramTest, TotalMassIsConserved)
{
    Histogram h(0, 5, 10);
    for (int v = -10; v < 200; ++v)
        h.add(v);
    uint64_t sum = 0;
    for (size_t i = 0; i < h.numBins(); ++i)
        sum += h.binCount(i);
    EXPECT_EQ(sum, h.total());
    EXPECT_EQ(h.total(), 210u);
}

TEST(HistogramTest, BinLowEdges)
{
    Histogram h(100, 25, 4);
    EXPECT_EQ(h.binLow(0), 100);
    EXPECT_EQ(h.binLow(1), 125);
    EXPECT_EQ(h.binLow(3), 175);
}

TEST(HistogramTest, CountsAccumulate)
{
    Histogram h(0, 10, 3);
    h.add(5);
    h.add(5);
    h.add(25);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 0u);
    EXPECT_EQ(h.binCount(2), 1u);
}

TEST(HistogramTest, ClearZeroesEverything)
{
    Histogram h(0, 10, 3);
    h.add(5);
    h.add(15);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    for (size_t i = 0; i < h.numBins(); ++i)
        EXPECT_EQ(h.binCount(i), 0u);
}

TEST(HistogramTest, NegativeRange)
{
    Histogram h(-50, 10, 10);
    h.add(-45);
    h.add(-1);
    h.add(49);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

} // namespace
} // namespace ssdcheck::stats
