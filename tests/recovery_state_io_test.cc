/**
 * @file
 * StateWriter/StateReader primitives: little-endian layout, CRC/FNV
 * reference values, the sticky-failure contract and the checkCount()
 * allocation-bomb guard.
 */
#include <gtest/gtest.h>

#include "recovery/state_io.h"

namespace ssdcheck::recovery {
namespace {

TEST(StateIoTest, WriterProducesLittleEndianBytes)
{
    StateWriter w;
    w.u8(0xab);
    w.u32(0x01020304);
    w.u64(0x1122334455667788ULL);
    const std::vector<uint8_t> expect = {0xab, 0x04, 0x03, 0x02, 0x01,
                                         0x88, 0x77, 0x66, 0x55, 0x44,
                                         0x33, 0x22, 0x11};
    EXPECT_EQ(w.bytes(), expect);
}

TEST(StateIoTest, RoundTripAllTypes)
{
    StateWriter w;
    w.u8(7);
    w.u32(123456789);
    w.u64(0xdeadbeefcafef00dULL);
    w.i64(-42);
    w.f64(3.25);
    w.boolean(true);
    w.boolean(false);
    w.str("hello snapshot");
    w.str("");

    StateReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 123456789u);
    EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello snapshot");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(StateIoTest, ShortBufferTripsStickyFailure)
{
    StateWriter w;
    w.u32(1);
    StateReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.u32(), 1u);
    EXPECT_EQ(r.u64(), 0u); // past end: zero value, sticky failure
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error().empty());
    // Every subsequent read keeps returning zero values.
    EXPECT_EQ(r.u8(), 0);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.boolean());
}

TEST(StateIoTest, NonCanonicalBooleanFails)
{
    const uint8_t byte = 2;
    StateReader r(&byte, 1);
    EXPECT_FALSE(r.boolean());
    EXPECT_FALSE(r.ok());
}

TEST(StateIoTest, CheckCountRejectsAllocationBombs)
{
    StateWriter w;
    w.u32(0xffffffff); // claims 4 billion elements
    StateReader r(w.bytes().data(), w.bytes().size());
    const uint64_t n = r.checkCount(r.u32(), 8);
    EXPECT_EQ(n, 0u);
    EXPECT_FALSE(r.ok());
}

TEST(StateIoTest, CheckCountAcceptsPlausibleCounts)
{
    StateWriter w;
    w.u32(3);
    w.u64(1);
    w.u64(2);
    w.u64(3);
    StateReader r(w.bytes().data(), w.bytes().size());
    const uint64_t n = r.checkCount(r.u32(), 8);
    ASSERT_EQ(n, 3u);
    EXPECT_TRUE(r.ok());
    for (uint64_t i = 1; i <= n; ++i)
        EXPECT_EQ(r.u64(), i);
    EXPECT_TRUE(r.atEnd());
}

TEST(StateIoTest, ExplicitFailIsSticky)
{
    StateWriter w;
    w.u32(5);
    StateReader r(w.bytes().data(), w.bytes().size());
    r.fail("semantic validation failed");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error(), "semantic validation failed");
    EXPECT_EQ(r.u32(), 0u); // bytes remain but the reader stays failed
}

TEST(StateIoTest, Crc32MatchesIeeeReferenceVectors)
{
    const std::string check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const uint8_t *>(check.data()),
                    check.size()),
              0xcbf43926u); // the classic CRC-32 check value
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(StateIoTest, Fnv1aMatchesReferenceVectors)
{
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_NE(fnv1a("config-a"), fnv1a("config-b"));
}

TEST(StateIoTest, StrRejectsLengthPastEnd)
{
    StateWriter w;
    w.u32(1000); // length prefix far beyond the buffer
    w.u8('x');
    StateReader r(w.bytes().data(), w.bytes().size());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace ssdcheck::recovery
