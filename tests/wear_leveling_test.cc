/** @file Tests for threshold-based static wear-leveling. */
#include <gtest/gtest.h>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/garbage_collector.h"
#include "ssd/page_mapper.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::ssd {
namespace {

nand::NandGeometry
geo()
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g; // 32 blocks
}

/**
 * Drive a skewed workload (cold data pinned, hot pages hammered) and
 * return the final erase-count spread.
 */
uint32_t
spreadAfterSkewedChurn(uint32_t wearThreshold)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160, /*wearAwareAllocation=*/wearThreshold > 0);
    GarbageCollector gc(m, arr, 3, 6, wearThreshold);
    // Cold data: fill most of the logical space once.
    for (uint64_t lpn = 0; lpn < 160; ++lpn)
        m.writePage(Lpn{lpn}, lpn);
    // Hot churn: hammer a tiny range so only a few physical blocks
    // cycle while the cold blocks never get erased.
    sim::Rng rng(5);
    for (int i = 0; i < 30000; ++i) {
        if (gc.needed())
            gc.collect();
        m.writePage(Lpn{rng.nextBelow(8)}, i);
    }
    const auto [lo, hi] = m.eraseCountRange();
    return hi - lo;
}

TEST(WearLevelingTest, SkewedChurnDivergesWithoutLeveling)
{
    EXPECT_GT(spreadAfterSkewedChurn(0), 300u);
}

TEST(WearLevelingTest, LevelingCutsTheSpreadSeveralFold)
{
    const uint32_t base = spreadAfterSkewedChurn(0);
    const uint32_t leveled = spreadAfterSkewedChurn(8);
    EXPECT_LT(leveled, base / 3);
    EXPECT_LT(leveled, 160u);
}

TEST(WearLevelingTest, LevelingPreservesData)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160, /*wearAwareAllocation=*/true);
    GarbageCollector gc(m, arr, 3, 6, /*wearThreshold=*/8);
    std::vector<uint64_t> expected(160);
    for (uint64_t lpn = 0; lpn < 160; ++lpn) {
        m.writePage(Lpn{lpn}, 1000 + lpn);
        expected[lpn] = 1000 + lpn;
    }
    sim::Rng rng(7);
    uint64_t stamp = 5000;
    for (int i = 0; i < 20000; ++i) {
        if (gc.needed())
            gc.collect();
        const uint64_t lpn = rng.nextBelow(8);
        m.writePage(Lpn{lpn}, stamp);
        expected[lpn] = stamp++;
    }
    ASSERT_EQ(m.checkConsistency(), "");
    for (uint64_t lpn = 0; lpn < 160; ++lpn) {
        uint64_t payload = 0;
        ASSERT_TRUE(m.readPage(Lpn{lpn}, &payload));
        EXPECT_EQ(payload, expected[lpn]) << "lpn " << lpn;
    }
}

TEST(WearLevelingTest, WearMovesReportedInGcResult)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160, /*wearAwareAllocation=*/true);
    GarbageCollector gc(m, arr, 3, 6, /*wearThreshold=*/4);
    for (uint64_t lpn = 0; lpn < 160; ++lpn)
        m.writePage(Lpn{lpn}, lpn);
    sim::Rng rng(9);
    uint64_t wearMoves = 0;
    for (int i = 0; i < 20000; ++i) {
        if (gc.needed())
            wearMoves += gc.collect().wearMoves;
        m.writePage(Lpn{rng.nextBelow(8)}, i);
    }
    EXPECT_GT(wearMoves, 0u);
}

TEST(WearLevelingTest, DeviceLevelCounterAggregates)
{
    SsdConfig cfg;
    cfg.userCapacityPages = 4096;
    cfg.bufferBytes = 8 * 4096;
    cfg.planesPerVolume = 4;
    cfg.pagesPerBlock = 8;
    cfg.jitterSigma = 0.0;
    cfg.hiccupProbability = 0.0;
    cfg.wearLevelThreshold = 8;
    SsdDevice dev(cfg);
    dev.precondition();
    sim::Rng rng(11);
    sim::SimTime t;
    for (int i = 0; i < 40000; ++i) {
        const auto res =
            dev.submit(blockdev::makeWrite4k(rng.nextBelow(16)), t);
        t = res.completeTime;
    }
    EXPECT_GT(dev.totalCounters().wearLevelMoves, 0u);
}

TEST(WearLevelingTest, ColdestBlockSelection)
{
    nand::NandArray arr(geo(), nand::NandTiming{});
    PageMapper m(arr, 160);
    // No closed blocks yet.
    EXPECT_EQ(m.pickColdestClosedBlock(), PageMapper::kNoVictim);
    for (uint64_t lpn = 0; lpn < 32; ++lpn)
        m.writePage(Lpn{lpn}, lpn);
    const nand::Pbn cold = m.pickColdestClosedBlock();
    ASSERT_NE(cold, PageMapper::kNoVictim);
    EXPECT_EQ(arr.blockEraseCount(cold), 0u);
}

} // namespace
} // namespace ssdcheck::ssd
