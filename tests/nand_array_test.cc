/** @file Unit tests for nand/nand_array.h. */
#include <gtest/gtest.h>

#include "nand/nand_array.h"

namespace ssdcheck::nand {
namespace {

NandGeometry
geo32()
{
    NandGeometry g;
    g.channels = 4;
    g.chipsPerChannel = 4;
    g.diesPerChip = 1;
    g.planesPerDie = 2;
    g.blocksPerPlane = 4;
    g.pagesPerBlock = 8;
    return g;
}

TEST(NandArrayTest, FlatAddressingRoutesToChips)
{
    NandArray arr(geo32(), NandTiming{});
    // Program the first page of every block across all planes.
    const auto g = geo32();
    for (uint32_t plane = 0; plane < g.totalPlanes(); ++plane) {
        const Ppn ppn = encodePpn(g, {plane, 0, 0});
        arr.programPage(ppn, plane * 10);
    }
    for (uint32_t plane = 0; plane < g.totalPlanes(); ++plane) {
        const Ppn ppn = encodePpn(g, {plane, 0, 0});
        uint64_t payload = 0;
        arr.readPage(ppn, &payload);
        EXPECT_EQ(payload, plane * 10);
        EXPECT_TRUE(arr.isProgrammed(ppn));
    }
}

TEST(NandArrayTest, BlockWritePointerTracksFlatBlocks)
{
    NandArray arr(geo32(), NandTiming{});
    EXPECT_EQ(arr.blockWritePointer(Pbn{5}), 0u);
    const auto g = geo32();
    const uint64_t base = 5 * uint64_t{g.pagesPerBlock};
    arr.programPage(Ppn{base + 0}, 1);
    arr.programPage(Ppn{base + 1}, 2);
    EXPECT_EQ(arr.blockWritePointer(Pbn{5}), 2u);
}

TEST(NandArrayTest, EraseBlockByFlatNumber)
{
    NandArray arr(geo32(), NandTiming{});
    const auto g = geo32();
    const Pbn blk{g.totalBlocks() - 1};
    const Ppn base{blk.value() * g.pagesPerBlock};
    arr.programPage(base, 42);
    EXPECT_EQ(arr.blockEraseCount(blk), 0u);
    arr.eraseBlock(blk);
    EXPECT_EQ(arr.blockEraseCount(blk), 1u);
    EXPECT_EQ(arr.blockWritePointer(blk), 0u);
    EXPECT_FALSE(arr.isProgrammed(base));
}

TEST(NandArrayTest, BatchProgramTimeScalesByWaves)
{
    NandArray arr(geo32(), NandTiming{});
    const auto tProg = NandTiming{}.programLatency;
    EXPECT_EQ(arr.batchProgramTime(0), 0);
    EXPECT_EQ(arr.batchProgramTime(1), tProg);
    EXPECT_EQ(arr.batchProgramTime(32), tProg);
    EXPECT_EQ(arr.batchProgramTime(33), 2 * tProg);
    EXPECT_EQ(arr.batchProgramTime(64), 2 * tProg);
    EXPECT_EQ(arr.batchProgramTime(65), 3 * tProg);
}

TEST(NandArrayTest, BatchProgramSlcIsFaster)
{
    NandArray arr(geo32(), NandTiming{});
    EXPECT_LT(arr.batchProgramTime(32, true), arr.batchProgramTime(32, false));
}

TEST(NandArrayTest, BatchReadTimeScalesByWaves)
{
    NandArray arr(geo32(), NandTiming{});
    const auto tRead = NandTiming{}.readLatency;
    EXPECT_EQ(arr.batchReadTime(0), 0);
    EXPECT_EQ(arr.batchReadTime(32), tRead);
    EXPECT_EQ(arr.batchReadTime(100), 4 * tRead);
}

TEST(NandArrayTest, TotalsMatchGeometry)
{
    NandArray arr(geo32(), NandTiming{});
    EXPECT_EQ(arr.totalPages(), geo32().totalPages());
    EXPECT_EQ(arr.totalBlocks(), geo32().totalBlocks());
}

/** Parameterized sweep: write pointers independent across geometries. */
class NandArrayGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(NandArrayGeometrySweep, FullFillAndEraseEveryBlock)
{
    const auto [planes, ppb] = GetParam();
    NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = planes;
    g.blocksPerPlane = 2;
    g.pagesPerBlock = ppb;
    NandArray arr(g, NandTiming{});
    for (uint64_t b = 0; b < arr.totalBlocks(); ++b) {
        for (uint32_t p = 0; p < ppb; ++p)
            arr.programPage(Ppn{b * ppb + p}, b * 1000 + p);
        EXPECT_EQ(arr.blockWritePointer(Pbn{b}), ppb);
    }
    for (uint64_t b = 0; b < arr.totalBlocks(); ++b) {
        arr.eraseBlock(Pbn{b});
        EXPECT_EQ(arr.blockWritePointer(Pbn{b}), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, NandArrayGeometrySweep,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(4u, 16u, 64u)));

} // namespace
} // namespace ssdcheck::nand
