// R7 fixture: heap allocation in the allocation-free core.
#include <memory>

namespace fixture {

struct Node
{
    int v = 0;
};

int *
leak()
{
    return new int(42);
}

std::unique_ptr<Node>
boxed()
{
    return std::make_unique<Node>();
}

std::shared_ptr<Node>
shared()
{
    return std::make_shared<Node>();
}

} // namespace fixture
