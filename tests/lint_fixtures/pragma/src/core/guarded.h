// Positive fixture for R4: include guards instead of #pragma once.
#ifndef FIXTURE_GUARDED_H
#define FIXTURE_GUARDED_H

namespace fixture {

struct Guarded
{
    int value = 0;
};

} // namespace fixture

#endif // FIXTURE_GUARDED_H
