// Negative fixture for R3: std::function is allowed outside
// src/sim and src/ssd (here, a use-case layer callback).
#include <cstdint>
#include <functional>

namespace fixture {

using RemapFn = std::function<uint64_t(uint64_t)>;

} // namespace fixture
