// Negative fixture: a header obeying every rule.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

struct Good
{
    std::vector<uint64_t> pages;
};

} // namespace fixture
