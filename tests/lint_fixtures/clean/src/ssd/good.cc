// Negative fixture: deterministic code; the forbidden tokens below
// appear only in comments and string literals, which the lexer blanks:
// std::chrono::steady_clock, rand(), for (auto &x : someUnorderedMap).
#include "ssd/good.h"

namespace fixture {

const char *kMessage = "steady_clock and std::function are fine in strings";

uint64_t
sumPages(const Good &g)
{
    uint64_t total = 0;
    for (const auto p : g.pages) // ordered container: fine anywhere.
        total += p;
    return total;
}

} // namespace fixture
