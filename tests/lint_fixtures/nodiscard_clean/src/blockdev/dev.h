#pragma once

struct IoResult
{
    int status = 0;
};

enum class LoadError
{
    Ok,
    IoError,
};

class Dev
{
  public:
    [[nodiscard]] IoResult submit(int req);
    [[nodiscard]] virtual IoResult submitBounded(int req, long deadline);
    [[nodiscard]] LoadError restore(const char *path);
    void describe(IoResult res, LoadError e);
};

inline int
use(Dev &d)
{
    IoResult res = d.submit(1);
    const LoadError e = d.restore("x");
    return res.status + static_cast<int>(e);
}
