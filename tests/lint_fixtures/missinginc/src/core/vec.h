// Positive fixture for R4's include-what-you-name half: names
// std::vector but relies on a transitive include to provide it.
#pragma once

#include <cstdint>

namespace fixture {

struct Vec
{
    std::vector<uint64_t> values; // would only compile transitively.
};

} // namespace fixture
