// Positive fixture for the suppression rule: lint:allow without a
// reason string absorbs nothing and is itself reported.
#include <cstdint>
#include <unordered_map>

namespace fixture {

uint64_t
sumValues(const std::unordered_map<uint64_t, uint64_t> &counts)
{
    uint64_t total = 0;
    for (const auto &kv : counts) // lint:allow(unordered-iter)
        total += kv.second;
    return total;
}

} // namespace fixture
