// Negative fixture for R1: src/perf is the allowlisted wall-clock
// timing layer, so steady_clock is legal here.
#include <chrono>

namespace fixture {

double
seconds()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace fixture
