// R7 fixture: placement new into inline storage is exempt, and the
// preprocessor line naming <new> is ignored.
#include <new>
#include <utility>

namespace fixture {

struct Slot
{
    alignas(8) unsigned char storage[16];
};

template <typename T, typename... A>
T *
constructInto(Slot &s, A &&...args)
{
    return ::new (static_cast<void *>(s.storage))
        T(std::forward<A>(args)...);
}

} // namespace fixture
