// R7 fixture: a reasoned suppression absorbs a deliberate cold-path
// allocation.
namespace fixture {

int *
coldInit()
{
    return new int(7); // lint:allow(heap-alloc): one-time cold init
}

} // namespace fixture
