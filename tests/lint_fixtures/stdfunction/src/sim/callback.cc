// Positive fixture for R3: std::function on the simulator hot path.
#include <functional>

namespace fixture {

struct Event
{
    std::function<void()> fire;
};

} // namespace fixture
