#pragma once

#include <cstdint>

namespace demo {

struct Config
{
    uint32_t depth = 4;
};

class Store
{
  public:
    explicit Store(Config cfg = {});

    void saveState() const;
    bool loadState();

  private:
    Config cfg_; // snapshot:skip(construction-time config; restore builds an identical store)
    uint64_t used_ = 0;
    uint64_t table_ = 0; // snapshot:skip(rebuilt by loadState from used_)
};

} // namespace demo
