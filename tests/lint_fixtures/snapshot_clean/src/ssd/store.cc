#include <cstdint>

namespace demo {

Store::Store(Config cfg) : cfg_(cfg) {}

void
Store::saveState() const
{
    persist(used_);
}

bool
Store::loadState()
{
    used_ = 0;
    rebuild();
    return true;
}

} // namespace demo
