// Negative fixture for R2: the iteration carries a reasoned
// suppression, and point lookups never need one.
#include <cstdint>
#include <unordered_map>

namespace fixture {

uint64_t
maxValue(const std::unordered_map<uint64_t, uint64_t> &counts)
{
    uint64_t best = 0;
    for (const auto &kv : counts) // lint:allow(unordered-iter): max is order-independent
        best = kv.second > best ? kv.second : best;
    const auto it = counts.find(7); // lookups are always fine.
    return it == counts.end() ? best : it->second;
}

} // namespace fixture
