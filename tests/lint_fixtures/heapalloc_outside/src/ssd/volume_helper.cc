// R7 fixture: src/ssd files outside the named FTL hot files are not
// in the heap-alloc scope (construction-time allocation is fine
// there).
#include <memory>

namespace fixture {

struct Helper
{
    int v = 0;
};

std::unique_ptr<Helper>
makeHelper()
{
    return std::make_unique<Helper>();
}

} // namespace fixture
