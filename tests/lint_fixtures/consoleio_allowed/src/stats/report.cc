// Fixture: the same console I/O outside the library dirs — src/stats
// is a reporting layer, so R5 does not apply and nothing is flagged.
#include <iostream>

void
printReport(int fill)
{
    std::cout << "fill=" << fill << "\n";
}
