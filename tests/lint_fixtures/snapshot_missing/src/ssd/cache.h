#pragma once

#include <cstdint>

namespace demo {

class Cache
{
  public:
    void saveState() const
    {
        persist(lpns_);
    }
    bool loadState()
    {
        restore(lpns_);
        restore(hits_);
        return true;
    }

  private:
    void persist(uint64_t v) const;
    void restore(uint64_t v);

    uint64_t lpns_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace demo
