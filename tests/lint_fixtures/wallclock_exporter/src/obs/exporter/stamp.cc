// Negative fixture for R1: src/obs/exporter is the telemetry
// endpoint layer, allowlisted for wall-clock reads (snapshot publish
// stamps, /healthz staleness) like src/perf.
#include <chrono>
#include <cstdint>

namespace fixture {

uint64_t
stamp()
{
    const auto t = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(t.time_since_epoch().count());
}

} // namespace fixture
