#pragma once

#include <cstdint>

namespace demo {

// snapshot:skip(this marker is attached to nothing)
class Cache
{
  public:
    void saveState() const
    {
        persist(lpns_); // snapshot:skip(markers inside bodies are dead too)
    }
    bool loadState()
    {
        restore(lpns_);
        return true;
    }

  private:
    void persist(uint64_t v) const;
    void restore(uint64_t v);

    uint64_t lpns_ = 0;
};

} // namespace demo
