#pragma once

struct IoResult
{
    int status = 0;
};

enum class LoadError
{
    Ok,
    IoError,
};

class Dev
{
  public:
    IoResult submit(int req);
    [[nodiscard]] IoResult submitBounded(int req, long deadline);
    LoadError restore(const char *path);
};
