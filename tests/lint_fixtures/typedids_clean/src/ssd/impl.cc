#include <cstdint>

namespace demo {

// Non-header: R9 scopes to public header signatures only.
void
localHelper(uint64_t lpn)
{
    (void)lpn;
}

} // namespace demo
