#pragma once

#include <cstdint>

namespace demo {

class Mapper
{
  public:
    void map(core::Lpn lpn, nand::Ppn ppn);
    uint64_t pageCount(uint64_t bytes) const;
};

} // namespace demo
