#pragma once

#include <cstdint>

namespace demo {

// src/core is outside the typed domains: raw ids stay legal here.
void probe(uint64_t lpn);

} // namespace demo
