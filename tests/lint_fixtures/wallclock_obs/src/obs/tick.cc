// Positive fixture for R1: the exporter carve-out is exact — src/obs
// outside src/obs/exporter is still a deterministic dir, so a clock
// read here must be flagged.
#include <chrono>
#include <cstdint>

namespace fixture {

uint64_t
tick()
{
    const auto t = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(t.time_since_epoch().count());
}

} // namespace fixture
