#pragma once

#include <cstdint>

namespace demo {

class Mapper
{
  public:
    void map(uint64_t lpn, uint64_t ppn);
    uint64_t pageCount(uint64_t bytes) const;

  private:
    void translate(uint64_t lpn);
};

void scrub(uint32_t pbn);

} // namespace demo
