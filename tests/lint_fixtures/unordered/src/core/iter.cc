// Positive fixture for R2: iterating an unordered container in a
// deterministic dir, both range-for and explicit iterators.
#include <cstdint>
#include <unordered_map>

namespace fixture {

uint64_t
sumValues(const std::unordered_map<uint64_t, uint64_t> &counts)
{
    uint64_t total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    for (auto it = counts.begin(); it != counts.end(); ++it)
        total += it->second;
    return total;
}

} // namespace fixture
