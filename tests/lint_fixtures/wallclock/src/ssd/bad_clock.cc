// Positive fixture for R1: wall-clock reads inside src/ssd.
#include <chrono>
#include <cstdint>
#include <cstdlib>

namespace fixture {

uint64_t
now()
{
    const auto t = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(t.time_since_epoch().count());
}

int
noise()
{
    return rand();
}

} // namespace fixture
