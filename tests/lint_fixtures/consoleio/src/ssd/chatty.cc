// Fixture: console I/O inside a library dir. Two findings expected —
// the std::cout stream use and the printf call. The snprintf below is
// legal (formats into a buffer, no I/O).
#include <cstdio>
#include <iostream>

void
debugDump(int fill)
{
    std::cout << "fill=" << fill << "\n";
}

void
debugPrint(int fill)
{
    std::printf("fill=%d\n", fill);
    char buf[32];
    std::snprintf(buf, sizeof buf, "fill=%d", fill);
    (void)buf;
}
