/** @file Unit and statistical tests for stats/chi_squared.h. */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "stats/chi_squared.h"
#include "stats/histogram.h"

namespace ssdcheck::stats {
namespace {

TEST(GammaQTest, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(regularizedGammaQ(1.0, 0.0), 1.0);
    EXPECT_NEAR(regularizedGammaQ(0.5, 50.0), 0.0, 1e-12);
}

TEST(GammaQTest, MatchesExponentialSpecialCase)
{
    // Q(1, x) = exp(-x).
    for (double x : {0.1, 0.5, 1.0, 2.0, 5.0})
        EXPECT_NEAR(regularizedGammaQ(1.0, x), std::exp(-x), 1e-10);
}

TEST(GammaQTest, MonotoneDecreasingInX)
{
    double prev = 1.0;
    for (double x = 0.0; x < 20.0; x += 0.5) {
        const double q = regularizedGammaQ(2.5, x);
        EXPECT_LE(q, prev + 1e-12);
        prev = q;
    }
}

TEST(ChiSquaredSurvivalTest, KnownCriticalValues)
{
    // Textbook 5% critical values of the chi-squared distribution.
    EXPECT_NEAR(chiSquaredSurvival(3.841, 1), 0.05, 0.001);
    EXPECT_NEAR(chiSquaredSurvival(5.991, 2), 0.05, 0.001);
    EXPECT_NEAR(chiSquaredSurvival(11.070, 5), 0.05, 0.001);
    EXPECT_NEAR(chiSquaredSurvival(18.307, 10), 0.05, 0.001);
}

TEST(ChiSquaredSurvivalTest, EdgeCases)
{
    EXPECT_DOUBLE_EQ(chiSquaredSurvival(0.0, 3), 1.0);
    EXPECT_DOUBLE_EQ(chiSquaredSurvival(10.0, 0), 1.0);
    EXPECT_LT(chiSquaredSurvival(100.0, 3), 1e-15);
}

TEST(TwoSampleTest, IdenticalCountsGivePValueOne)
{
    const std::vector<uint64_t> a = {50, 60, 70, 40};
    const auto res = chiSquaredTwoSample(a, a);
    ASSERT_TRUE(res.valid);
    EXPECT_NEAR(res.statistic, 0.0, 1e-12);
    EXPECT_NEAR(res.pValue, 1.0, 1e-12);
}

TEST(TwoSampleTest, DisjointDistributionsGiveTinyPValue)
{
    const std::vector<uint64_t> a = {100, 0, 0, 100};
    const std::vector<uint64_t> b = {0, 100, 100, 0};
    const auto res = chiSquaredTwoSample(a, b);
    ASSERT_TRUE(res.valid);
    EXPECT_LT(res.pValue, 1e-10);
}

TEST(TwoSampleTest, TooLittleDataIsInvalid)
{
    const std::vector<uint64_t> a = {1, 0};
    const std::vector<uint64_t> b = {0, 1};
    EXPECT_FALSE(chiSquaredTwoSample(a, b).valid);
}

TEST(TwoSampleTest, AllMassInOneBinIsDegenerate)
{
    const std::vector<uint64_t> a = {100, 0, 0};
    const std::vector<uint64_t> b = {120, 0, 0};
    // Everything pools into one cell: no test possible.
    EXPECT_FALSE(chiSquaredTwoSample(a, b).valid);
}

TEST(TwoSampleTest, SparseBinsArePooled)
{
    // Bins 2..5 individually fail minExpected but pool together.
    const std::vector<uint64_t> a = {100, 80, 1, 2, 1, 1};
    const std::vector<uint64_t> b = {90, 85, 2, 1, 1, 2};
    const auto res = chiSquaredTwoSample(a, b);
    ASSERT_TRUE(res.valid);
    EXPECT_EQ(res.dof, 2); // 3 cells after pooling
    EXPECT_GT(res.pValue, 0.05);
}

TEST(TwoSampleTest, HistogramOverloadMatchesVectors)
{
    Histogram ha(0, 10, 4), hb(0, 10, 4);
    for (int i = 0; i < 200; ++i) {
        ha.add((i * 13) % 40);
        hb.add((i * 7) % 40);
    }
    const auto r1 = chiSquaredTwoSample(ha, hb);
    const auto r2 = chiSquaredTwoSample(ha.counts(), hb.counts());
    EXPECT_DOUBLE_EQ(r1.statistic, r2.statistic);
    EXPECT_DOUBLE_EQ(r1.pValue, r2.pValue);
}

TEST(TwoSampleTest, SameDistributionSamplesUsuallyNotSignificant)
{
    // Draw two samples from the same discrete distribution many
    // times: p < 0.001 should be rare (it IS the false-positive rate
    // the GC-volume scan relies on).
    sim::Rng rng(123);
    int falsePositives = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
        Histogram a(0, 10, 10), b(0, 10, 10);
        for (int i = 0; i < 300; ++i) {
            a.add(static_cast<int64_t>(rng.nextBelow(100)));
            b.add(static_cast<int64_t>(rng.nextBelow(100)));
        }
        const auto res = chiSquaredTwoSample(a, b);
        ASSERT_TRUE(res.valid);
        if (res.pValue < 0.001)
            ++falsePositives;
    }
    EXPECT_LE(falsePositives, 1);
}

TEST(TwoSampleTest, ShiftedDistributionsDetected)
{
    sim::Rng rng(321);
    Histogram a(0, 10, 12), b(0, 10, 12);
    for (int i = 0; i < 400; ++i) {
        a.add(static_cast<int64_t>(rng.nextBelow(60)));
        b.add(static_cast<int64_t>(30 + rng.nextBelow(60)));
    }
    const auto res = chiSquaredTwoSample(a, b);
    ASSERT_TRUE(res.valid);
    EXPECT_LT(res.pValue, 1e-6);
}

} // namespace
} // namespace ssdcheck::stats
