/** @file Unit tests for blockdev/request.h. */
#include <gtest/gtest.h>

#include "blockdev/request.h"

namespace ssdcheck::blockdev {
namespace {

TEST(RequestTest, Constants)
{
    EXPECT_EQ(kSectorSize, 512u);
    EXPECT_EQ(kPageSize, 4096u);
    EXPECT_EQ(kSectorsPerPage, 8u);
}

TEST(RequestTest, BytesAndPages)
{
    IoRequest r;
    r.lba = 16;
    r.sectors = 8;
    EXPECT_EQ(r.bytes(), 4096u);
    EXPECT_EQ(r.pages(), 1u);
    EXPECT_EQ(r.firstPage(), 2u);

    r.sectors = 9; // straddles into a second page
    EXPECT_EQ(r.pages(), 2u);

    r.sectors = 32;
    EXPECT_EQ(r.bytes(), 16384u);
    EXPECT_EQ(r.pages(), 4u);
}

TEST(RequestTest, TypePredicates)
{
    IoRequest r;
    r.type = IoType::Read;
    EXPECT_TRUE(r.isRead());
    EXPECT_FALSE(r.isWrite());
    r.type = IoType::Write;
    EXPECT_TRUE(r.isWrite());
    r.type = IoType::Trim;
    EXPECT_FALSE(r.isRead());
    EXPECT_FALSE(r.isWrite());
}

TEST(RequestTest, ToStringNames)
{
    EXPECT_EQ(toString(IoType::Read), "read");
    EXPECT_EQ(toString(IoType::Write), "write");
    EXPECT_EQ(toString(IoType::Trim), "trim");
}

TEST(RequestTest, Make4kHelpers)
{
    const IoRequest r = makeRead4k(10);
    EXPECT_TRUE(r.isRead());
    EXPECT_EQ(r.lba, 80u);
    EXPECT_EQ(r.sectors, 8u);
    const IoRequest w = makeWrite4k(3);
    EXPECT_TRUE(w.isWrite());
    EXPECT_EQ(w.firstPage(), 3u);
}

TEST(RequestTest, IoResultLatency)
{
    IoResult res;
    res.submitTime = sim::SimTime{100};
    res.completeTime = sim::SimTime{350};
    EXPECT_EQ(res.latency(), 250);
}

} // namespace
} // namespace ssdcheck::blockdev
