/**
 * @file
 * Unit tests for the ssdcheck_lint declaration indexer
 * (tools/lint/decl_index.h): the lightweight scanner that recovers
 * classes, members, method signatures, inline and out-of-line bodies,
 * free functions and snapshot:skip markers from blanked source text.
 * Sources are written to a temp dir and run through the real lexer
 * (loadSourceFile), so the index sees exactly what the rules see.
 */
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/decl_index.h"

namespace lint = ssdcheck::lint;
namespace fs = std::filesystem;

namespace {

lint::SourceFile
parseSource(const std::string &content, const std::string &relPath)
{
    static int counter = 0;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "ssdcheck_decl_index";
    fs::create_directories(dir);
    const fs::path file =
        dir / (std::to_string(counter++) + "_" +
               fs::path(relPath).filename().string());
    std::ofstream(file) << content;
    std::string err;
    lint::SourceFile f =
        lint::loadSourceFile(file.string(), relPath, &err);
    EXPECT_TRUE(err.empty()) << err;
    return f;
}

lint::DeclIndex
indexOf(const std::string &content,
        const std::string &relPath = "src/ssd/t.h")
{
    return lint::DeclIndex::build({parseSource(content, relPath)});
}

std::vector<std::string>
memberNames(const lint::ClassInfo &cls)
{
    std::vector<std::string> names;
    names.reserve(cls.members.size());
    for (const auto &m : cls.members)
        names.push_back(m.name);
    return names;
}

} // namespace

TEST(DeclIndex, MembersMethodsAndAccessOfPlainClass)
{
    const lint::DeclIndex idx = indexOf(R"(
namespace demo {
class Widget
{
  public:
    void poke(uint64_t lpn, int count);
    uint64_t size() const { return n_; }

  private:
    static constexpr uint32_t kMax = 4;
    uint64_t n_ = 0;
    double ratio_;
};
} // namespace demo
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    const lint::ClassInfo &cls = idx.classes[0];
    EXPECT_EQ(cls.name, "Widget");
    EXPECT_FALSE(cls.isStruct);
    // Static data members are not snapshot state and stay out.
    EXPECT_EQ(memberNames(cls),
              (std::vector<std::string>{"n_", "ratio_"}));
    EXPECT_EQ(cls.members[0].type, "uint64_t");

    const lint::Method *poke = cls.findMethod("poke");
    ASSERT_NE(poke, nullptr);
    EXPECT_TRUE(poke->isPublic);
    EXPECT_FALSE(poke->hasBody);
    ASSERT_EQ(poke->params.size(), 2u);
    EXPECT_EQ(poke->params[0].type, "uint64_t");
    EXPECT_EQ(poke->params[0].name, "lpn");
    EXPECT_EQ(poke->params[1].name, "count");

    const lint::Method *size = cls.findMethod("size");
    ASSERT_NE(size, nullptr);
    EXPECT_TRUE(size->hasBody);
    EXPECT_TRUE(lint::containsWord(size->body, "n_"));
}

TEST(DeclIndex, StructDefaultsToPublicClassToPrivate)
{
    const lint::DeclIndex idx = indexOf(R"(
struct Open
{
    void visible(uint64_t ppn);
};
class Closed
{
    void hidden(uint64_t ppn);
};
)");
    ASSERT_EQ(idx.classes.size(), 2u);
    ASSERT_NE(idx.classes[0].findMethod("visible"), nullptr);
    EXPECT_TRUE(idx.classes[0].findMethod("visible")->isPublic);
    ASSERT_NE(idx.classes[1].findMethod("hidden"), nullptr);
    EXPECT_FALSE(idx.classes[1].findMethod("hidden")->isPublic);
}

TEST(DeclIndex, TemplatesClassAndMethod)
{
    const lint::DeclIndex idx = indexOf(R"(
template <typename T>
class Box
{
  public:
    template <typename U>
    void set(U next);

  private:
    T value_{};
    std::vector<T> history_;
};
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    const lint::ClassInfo &cls = idx.classes[0];
    EXPECT_EQ(cls.name, "Box");
    EXPECT_EQ(memberNames(cls),
              (std::vector<std::string>{"value_", "history_"}));
    const lint::Method *set = cls.findMethod("set");
    ASSERT_NE(set, nullptr);
    ASSERT_EQ(set->params.size(), 1u);
    EXPECT_EQ(set->params[0].name, "next");
}

TEST(DeclIndex, NestedClassesKeepMembersApart)
{
    const lint::DeclIndex idx = indexOf(R"(
class Outer
{
  public:
    struct Inner
    {
        uint32_t tag = 0;
    };

  private:
    Inner cur_;
    uint64_t outerOnly_ = 0;
};
)");
    ASSERT_EQ(idx.classes.size(), 2u);
    const auto outer = idx.classesNamed("Outer");
    const auto inner = idx.classesNamed("Inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(memberNames(*outer[0]),
              (std::vector<std::string>{"cur_", "outerOnly_"}));
    EXPECT_EQ(memberNames(*inner[0]),
              (std::vector<std::string>{"tag"}));
}

TEST(DeclIndex, InClassInitializerForms)
{
    const lint::DeclIndex idx = indexOf(R"(
class Forms
{
    uint64_t eq_ = 5;
    std::vector<int> braced_{1, 2};
    sim::SimTime empty_{};
    std::array<uint8_t, 16> plain_;
};
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    EXPECT_EQ(memberNames(idx.classes[0]),
              (std::vector<std::string>{"eq_", "braced_", "empty_",
                                        "plain_"}));
    EXPECT_EQ(idx.classes[0].members[2].type, "sim::SimTime");
}

TEST(DeclIndex, PreprocessorAndMacrosDoNotDerailTheScan)
{
    // Function-like macro definitions carry unbalanced-looking braces
    // and continuations; preprocessor lines are blanked wholesale, so
    // members on either side still index.
    const lint::DeclIndex idx = indexOf(R"(
#define MAKE_COUNTER(name) \
    uint64_t name##Count() const { return name##_; }

class Counted
{
  public:
#if defined(SSDCHECK_EXTRA)
    void extra();
#endif

  private:
    uint64_t reads_ = 0;
};
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    EXPECT_EQ(idx.classes[0].name, "Counted");
    EXPECT_EQ(memberNames(idx.classes[0]),
              (std::vector<std::string>{"reads_"}));
}

TEST(DeclIndex, BracedDefaultArgumentsDoNotSplitDeclarations)
{
    // Regression: `cfg = {}` mid-parameter-list used to be taken for
    // an inline body, and the tail parameters became phantom members.
    const lint::DeclIndex idx = indexOf(R"(
class Engine
{
  public:
    static Engine diagnose(Device &dev, Config cfg = {},
                           sim::SimTime startTime = sim::kTimeZero);
    explicit Engine(Thresholds thresholds = {}, uint32_t window = 2000);

  private:
    uint64_t state_ = 0;
};
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    const lint::ClassInfo &cls = idx.classes[0];
    EXPECT_EQ(memberNames(cls), (std::vector<std::string>{"state_"}));
    const lint::Method *diagnose = cls.findMethod("diagnose");
    ASSERT_NE(diagnose, nullptr);
    EXPECT_TRUE(diagnose->isStatic);
    EXPECT_FALSE(diagnose->hasBody);
    ASSERT_EQ(diagnose->params.size(), 3u);
    EXPECT_EQ(diagnose->params[2].name, "startTime");
    const lint::Method *ctor = cls.findMethod("Engine");
    ASSERT_NE(ctor, nullptr);
    ASSERT_EQ(ctor->params.size(), 2u);
    EXPECT_EQ(ctor->params[1].name, "window");
}

TEST(DeclIndex, OutOfLineBodiesAndMethodBodyText)
{
    const lint::SourceFile header = parseSource(R"(
class Meter
{
  public:
    void saveState() const;
    bool loadState();

  private:
    uint64_t count_ = 0;
};
)",
                                                "src/ssd/meter.h");
    const lint::SourceFile impl = parseSource(R"(
void
Meter::saveState() const
{
    write(count_);
}

bool
Meter::loadState()
{
    count_ = read();
    return true;
}
)",
                                              "src/ssd/meter.cc");
    const lint::DeclIndex idx = lint::DeclIndex::build({header, impl});
    ASSERT_EQ(idx.classes.size(), 1u);
    ASSERT_EQ(idx.bodies.size(), 2u);
    EXPECT_EQ(idx.bodies[0].className, "Meter");
    EXPECT_EQ(idx.bodies[0].method, "saveState");
    const std::string save =
        idx.methodBodyText(idx.classes[0], "saveState");
    const std::string load =
        idx.methodBodyText(idx.classes[0], "loadState");
    EXPECT_TRUE(lint::containsWord(save, "count_"));
    EXPECT_TRUE(lint::containsWord(load, "count_"));
}

TEST(DeclIndex, BodiesFromUnrelatedFilesDoNotAttach)
{
    // Two classes share a name across namespaces; a body in a file
    // with a different path stem must not satisfy the other class.
    const lint::SourceFile header = parseSource(R"(
class Meter
{
  public:
    void saveState() const;

  private:
    uint64_t count_ = 0;
};
)",
                                                "src/obs/meter.h");
    const lint::SourceFile other = parseSource(R"(
void
Meter::saveState() const
{
    write(count_);
}
)",
                                               "src/stats/gauge.cc");
    const lint::DeclIndex idx = lint::DeclIndex::build({header, other});
    ASSERT_EQ(idx.classes.size(), 1u);
    EXPECT_TRUE(idx.methodBodyText(idx.classes[0], "saveState").empty());
}

TEST(DeclIndex, FreeFunctionsCaptured)
{
    const lint::DeclIndex idx = indexOf(R"(
namespace demo {

uint64_t translate(uint64_t lpn, const Map &map);

inline int
clamp(int v)
{
    return v < 0 ? 0 : v;
}

} // namespace demo
)");
    ASSERT_EQ(idx.freeFunctions.size(), 2u);
    EXPECT_EQ(idx.freeFunctions[0].name, "translate");
    ASSERT_EQ(idx.freeFunctions[0].params.size(), 2u);
    EXPECT_EQ(idx.freeFunctions[0].params[0].name, "lpn");
    EXPECT_EQ(idx.freeFunctions[1].name, "clamp");
}

TEST(DeclIndex, SnapshotSkipMarkerParsing)
{
    const lint::DeclIndex idx = indexOf(R"(
class Marks
{
    uint64_t a_ = 0; // snapshot:skip(rebuilt from b_ on load)
    uint64_t b_ = 0; // snapshot:skip()
    uint64_t c_ = 0; // snapshot:skip(<reason>)
    uint64_t d_ = 0; // snapshot:skip
};
)");
    ASSERT_EQ(idx.classes.size(), 1u);
    const auto &m = idx.classes[0].members;
    ASSERT_EQ(m.size(), 4u);
    EXPECT_TRUE(m[0].skip.present);
    EXPECT_TRUE(m[0].skip.hasReason);
    EXPECT_TRUE(m[1].skip.present);
    EXPECT_FALSE(m[1].skip.hasReason);
    // `<reason>` is the documentation placeholder, not an annotation,
    // and the bare word is no marker at all.
    EXPECT_FALSE(m[2].skip.present);
    EXPECT_FALSE(m[3].skip.present);
    // Only the two real markers land in the marker list.
    EXPECT_EQ(idx.skipMarkers.size(), 2u);
}

TEST(DeclIndex, ContainsWordMatchesWholeIdentifiersOnly)
{
    EXPECT_TRUE(lint::containsWord("w.u64(lpns_);", "lpns_"));
    EXPECT_FALSE(lint::containsWord("w.u64(lpns_x);", "lpns_"));
    EXPECT_FALSE(lint::containsWord("w.u64(xlpns_);", "lpns_"));
    EXPECT_FALSE(lint::containsWord("", "lpns_"));
}
