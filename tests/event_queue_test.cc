/** @file Unit tests for sim/event_queue.h. */
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace ssdcheck::sim {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.now(), kTimeZero);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(SimTime{300}, [&](SimTime) { order.push_back(3); });
    q.schedule(SimTime{100}, [&](SimTime) { order.push_back(1); });
    q.schedule(SimTime{200}, [&](SimTime) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), SimTime{300});
}

TEST(EventQueueTest, TiesFireInSchedulingOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(SimTime{42}, [&order, i](SimTime) { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbackReceivesFireTime)
{
    EventQueue q;
    SimTime seen{-1};
    q.schedule(SimTime{777}, [&](SimTime t) { seen = t; });
    q.runOne();
    EXPECT_EQ(seen, SimTime{777});
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime fired{-1};
    q.schedule(SimTime{100}, [&](SimTime) {
        q.scheduleAfter(50, [&](SimTime t) { fired = t; });
    });
    q.runAll();
    EXPECT_EQ(fired, SimTime{150});
}

TEST(EventQueueTest, EventsScheduledDuringRunAllAlsoFire)
{
    EventQueue q;
    int count = 0;
    q.schedule(SimTime{10}, [&](SimTime) {
        ++count;
        q.schedule(SimTime{20}, [&](SimTime) { ++count; });
    });
    q.runAll();
    EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(SimTime{10}, [&](SimTime) { ++fired; });
    q.schedule(SimTime{20}, [&](SimTime) { ++fired; });
    q.schedule(SimTime{30}, [&](SimTime) { ++fired; });
    q.runUntil(SimTime{20});
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.now(), SimTime{20});
}

TEST(EventQueueTest, RunUntilAdvancesNowWhenIdle)
{
    EventQueue q;
    q.runUntil(SimTime{500});
    EXPECT_EQ(q.now(), SimTime{500});
}

TEST(EventQueueTest, ManyInterleavedEventsStaySorted)
{
    EventQueue q;
    std::vector<SimTime> fires;
    // Schedule in a scrambled but deterministic order.
    for (int i = 0; i < 500; ++i)
        q.schedule(SimTime{(i * 7919) % 1000},
                   [&](SimTime t) { fires.push_back(t); });
    q.runAll();
    ASSERT_EQ(fires.size(), 500u);
    for (size_t i = 1; i < fires.size(); ++i)
        EXPECT_LE(fires[i - 1], fires[i]);
}

} // namespace
} // namespace ssdcheck::sim
