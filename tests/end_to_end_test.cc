/**
 * @file End-to-end integration tests: full pipelines combining the
 * use cases with diagnosis and the runtime model — regression guards
 * for the headline claims (VA-LVM isolation, PAS tail reduction,
 * Hybrid-PAS steady throughput).
 */
#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "nvm/nvm_device.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/hybrid.h"
#include "usecases/lvm.h"
#include "usecases/pas.h"
#include "usecases/runner.h"
#include "usecases/scheduler.h"
#include "workload/snia_synth.h"
#include "workload/synthetic.h"

namespace ssdcheck {
namespace {

using core::FeatureSet;
using core::SsdCheck;
using ssd::makePreset;
using ssd::SsdDevice;
using ssd::SsdModel;
using usecases::HybridConfig;
using usecases::HybridMode;
using usecases::HybridTier;

/** Multi-tenant read+write pair on SSD D: VA-LVM must beat Linear. */
TEST(EndToEndTest, VaLvmIsolatesTenantsOnSsdD)
{
    const auto writeTrace = workload::buildSniaTrace(
        workload::SniaWorkload::Web, 12 * 1024, 0.02, 1);
    const auto readTrace = workload::buildSniaTrace(
        workload::SniaWorkload::Exch, 12 * 1024, 0.01, 2);

    auto runPair = [&](bool volumeAware) {
        SsdDevice dev(makePreset(SsdModel::D));
        dev.precondition();
        auto vols = volumeAware
                        ? usecases::makeVolumeAwareVolumes(
                              dev, dev.config().volumeBits)
                        : usecases::makeLinearVolumes(dev, 2);
        std::vector<usecases::TenantSpec> tenants(2);
        tenants[0].trace = &readTrace;
        tenants[0].dev = vols[0].get();
        tenants[0].name = "read";
        tenants[1].trace = &writeTrace;
        tenants[1].dev = vols[1].get();
        tenants[1].name = "write";
        tenants[1].loop = true; // sustained colocation pressure
        return usecases::runTenantsClosedLoop(tenants, sim::kTimeZero);
    };

    const auto linear = runPair(false);
    const auto va = runPair(true);
    // The read-intensive tenant must gain throughput and shed tail
    // latency under VA-LVM (paper Fig. 12 direction).
    EXPECT_GT(va[0].throughputMbps(), linear[0].throughputMbps() * 1.2);
    EXPECT_LT(va[0].readLatency.percentile(99.5),
              linear[0].readLatency.percentile(99.5));
}

/** PAS must cut the read tail vs noop on a fore/read-trigger device. */
TEST(EndToEndTest, PasReducesReadTailOnSsdF)
{
    auto trace = workload::buildSniaTrace(workload::SniaWorkload::Build,
                                          32 * 1024, 0.05, 3);
    auto runWith = [&](bool pas) {
        SsdDevice dev(makePreset(SsdModel::F));
        core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
        const FeatureSet fs = runner.extractFeatures();
        SsdCheck check(fs);
        auto paced = trace;
        sim::Rng rng(4);
        paced.assignPoissonArrivals(5000.0, rng);
        if (pas) {
            usecases::PasScheduler sched(check);
            return usecases::runScheduled(dev, sched, paced, runner.now(),
                                          &check);
        }
        usecases::NoopScheduler sched;
        return usecases::runScheduled(dev, sched, paced, runner.now(),
                                      &check);
    };
    const auto noop = runWith(false);
    const auto pas = runWith(true);
    EXPECT_LT(pas.stream.readLatency.percentile(98),
              noop.stream.readLatency.percentile(98));
}

/** Ideal PAS bounds SSDcheck-driven PAS (paper Fig. 14 "ideal"). */
TEST(EndToEndTest, IdealPasAtLeastAsGoodAsPas)
{
    auto trace = workload::buildSniaTrace(workload::SniaWorkload::Exch,
                                          32 * 1024, 0.01, 5);
    SsdDevice devP(makePreset(SsdModel::G));
    core::DiagnosisRunner runnerP(devP, core::DiagnosisConfig{});
    const FeatureSet fs = runnerP.extractFeatures();
    SsdCheck check(fs);
    auto paced = trace;
    sim::Rng rng(6);
    paced.assignPoissonArrivals(5000.0, rng);
    usecases::PasScheduler pas(check);
    const auto pasRes =
        usecases::runScheduled(devP, pas, paced, runnerP.now(), &check);

    // Match device states: the PAS device ended its diagnosis on a
    // sequential fill, so give the ideal run the same starting point.
    SsdDevice devI(makePreset(SsdModel::G));
    core::DiagnosisRunner runnerI(devI, core::DiagnosisConfig{});
    runnerI.sequentialFill();
    usecases::IdealPasScheduler ideal(devI);
    const auto idealRes =
        usecases::runScheduled(devI, ideal, paced, runnerI.now(), nullptr);

    // Ideal (oracle) tail latency is no worse than 1.3x PAS's tail —
    // i.e. PAS pays a bounded misprediction cost (paper §V-D).
    EXPECT_LT(idealRes.stream.readLatency.percentile(98),
              static_cast<double>(
                  pasRes.stream.readLatency.percentile(98)) * 1.3);
}

/**
 * Hybrid PAS vs the always-NVM baseline (Fig. 15): the baseline rides
 * the NVM until the pool exhausts and then collapses onto the
 * irregular SSD; Hybrid PAS is consistent from the start, matches the
 * collapsed baseline's steady state, eliminates backpressure events,
 * and carries less NVM pressure. (Steady-state *throughput* parity is
 * a conservation property of a closed loop — see EXPERIMENTS.md.)
 */
TEST(EndToEndTest, HybridPasConsistentAndBaselineCliffs)
{
    const auto trace =
        workload::buildRandomWriteTrace(100000, 128 * 1024, 7);
    struct Out
    {
        double firstThirdMbps = 0.0;
        double lastThirdMbps = 0.0;
        uint64_t nvmPressure = 0;
        uint64_t backpressure = 0;
    };
    auto run = [&](HybridMode mode) {
        SsdDevice ssd(makePreset(SsdModel::C));
        core::DiagnosisRunner runner(ssd, core::DiagnosisConfig{});
        const FeatureSet fs = runner.extractFeatures();
        runner.precondition(); // GC steady state for both modes
        SsdCheck check(fs);
        nvm::NvmConfig ncfg;
        ncfg.capacityPages = 4096;
        nvm::NvmDevice nvm(ncfg);
        HybridConfig hcfg;
        hcfg.bufferWeight = 0.15; // W*R <= drain at our scaled rates
        hcfg.drainPeriod = sim::microseconds(800);
        hcfg.drainBatchPages = 1;
        HybridTier tier(ssd, nvm,
                        mode == HybridMode::HybridPas ? &check : nullptr,
                        mode, hcfg);
        const auto res = usecases::runClosedLoop(
            tier, trace, 1, sim::microseconds(100), runner.now());
        Out out;
        const size_t w = res.timeline.numWindows();
        size_t n1 = 0, n3 = 0;
        // "First" = the opening NVM era (a few 100ms windows).
        for (size_t i = 0; i < std::min<size_t>(5, w / 3); ++i, ++n1)
            out.firstThirdMbps += res.timeline.mbps(i);
        for (size_t i = (w * 2) / 3; i < w; ++i, ++n3)
            out.lastThirdMbps += res.timeline.mbps(i);
        out.firstThirdMbps /= static_cast<double>(std::max<size_t>(1, n1));
        out.lastThirdMbps /= static_cast<double>(std::max<size_t>(1, n3));
        out.nvmPressure = tier.nvmWritePages();
        out.backpressure = tier.backpressureWrites();
        return out;
    };
    const auto baseline = run(HybridMode::Baseline);
    const auto hybrid = run(HybridMode::HybridPas);

    // (a) The baseline cliffs hard once the NVM pool exhausts.
    EXPECT_GT(baseline.firstThirdMbps, baseline.lastThirdMbps * 2.0);
    // (b) Hybrid PAS is consistent: no comparable collapse.
    EXPECT_LT(hybrid.firstThirdMbps, hybrid.lastThirdMbps * 1.8);
    // (c) Its steady state at least matches the collapsed baseline.
    EXPECT_GT(hybrid.lastThirdMbps, baseline.lastThirdMbps * 0.9);
    // (d) Selective delivery removes backpressure and NVM pressure.
    EXPECT_LT(hybrid.backpressure, baseline.backpressure / 4 + 1);
    EXPECT_LT(hybrid.nvmPressure, baseline.nvmPressure);
}

/** The full quickstart pipeline stays healthy on every preset. */
class PipelineTest : public ::testing::TestWithParam<SsdModel>
{
};

TEST_P(PipelineTest, DiagnoseModelPredict)
{
    SsdDevice dev(makePreset(GetParam()));
    core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    ASSERT_TRUE(fs.bufferModelUsable()) << fs.summary();
    SsdCheck check(fs);
    EXPECT_TRUE(check.enabled());
    const auto trace =
        workload::buildRwMixedTrace(30000, dev.capacityPages(), 11);
    const auto acc =
        core::evaluatePredictionAccuracy(dev, check, trace, runner.now());
    EXPECT_GT(acc.nlAccuracy(), 0.9);
    EXPECT_TRUE(check.enabled()); // never auto-disabled on its own fleet
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PipelineTest,
                         ::testing::ValuesIn(ssd::allModels()),
                         [](const auto &info) {
                             return "SSD_" + ssd::toString(info.param);
                         });

} // namespace
} // namespace ssdcheck
