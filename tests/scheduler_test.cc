/** @file Unit tests for usecases/scheduler.h (baseline schedulers). */
#include <gtest/gtest.h>

#include "usecases/scheduler.h"

namespace ssdcheck::usecases {
namespace {

using blockdev::IoType;
using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::kTimeZero;
using sim::microseconds;
using sim::milliseconds;

QueuedRequest
qr(const blockdev::IoRequest &req, sim::SimTime arrival, uint64_t seq)
{
    QueuedRequest q;
    q.req = req;
    q.arrival = arrival;
    q.seq = seq;
    return q;
}

TEST(NoopSchedulerTest, StrictFifo)
{
    NoopScheduler s;
    s.enqueue(qr(makeWrite4k(1), kTimeZero, 0));
    s.enqueue(qr(makeRead4k(2), kTimeZero + 1, 1));
    s.enqueue(qr(makeWrite4k(3), kTimeZero + 2, 2));
    EXPECT_EQ(s.depth(), 3u);
    EXPECT_EQ(s.dequeue(kTimeZero + 10).seq, 0u);
    EXPECT_EQ(s.dequeue(kTimeZero + 10).seq, 1u);
    EXPECT_EQ(s.dequeue(kTimeZero + 10).seq, 2u);
    EXPECT_TRUE(s.empty());
}

TEST(DeadlineSchedulerTest, ReadsJumpWrites)
{
    DeadlineScheduler s;
    s.enqueue(qr(makeWrite4k(1), kTimeZero, 0));
    s.enqueue(qr(makeRead4k(2), kTimeZero + 1, 1));
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 1u); // read first
    EXPECT_EQ(s.dequeue(kTimeZero + microseconds(10)).seq, 0u);
}

TEST(DeadlineSchedulerTest, ExpiredWriteBeatsReads)
{
    DeadlineScheduler s(microseconds(500), milliseconds(5));
    s.enqueue(qr(makeWrite4k(1), kTimeZero, 0));
    s.enqueue(qr(makeRead4k(2), kTimeZero + milliseconds(6), 1));
    // At t=6ms the write has waited past its 5ms deadline.
    EXPECT_EQ(s.dequeue(kTimeZero + milliseconds(6)).seq, 0u);
}

TEST(DeadlineSchedulerTest, DrainsWritesWhenNoReads)
{
    DeadlineScheduler s;
    s.enqueue(qr(makeWrite4k(1), kTimeZero, 0));
    s.enqueue(qr(makeWrite4k(2), kTimeZero, 1));
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 0u);
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 1u);
}

TEST(CfqSchedulerTest, ReadsGetLargerQuantum)
{
    CfqScheduler s(2, 1);
    for (uint64_t i = 0; i < 4; ++i)
        s.enqueue(qr(makeRead4k(i), kTimeZero, i));
    for (uint64_t i = 0; i < 4; ++i)
        s.enqueue(qr(makeWrite4k(i), kTimeZero, 10 + i));
    std::vector<bool> isRead;
    while (!s.empty())
        isRead.push_back(s.dequeue(kTimeZero).req.isRead());
    // 2 reads : 1 write alternation until a class drains.
    ASSERT_EQ(isRead.size(), 8u);
    int reads = 0;
    for (size_t i = 0; i < 3; ++i)
        reads += isRead[i] ? 1 : 0;
    EXPECT_EQ(reads, 2); // first slice: two reads, then a write
}

TEST(CfqSchedulerTest, FallsBackWhenClassEmpty)
{
    CfqScheduler s(2, 2);
    s.enqueue(qr(makeWrite4k(1), kTimeZero, 0));
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 0u);
    EXPECT_TRUE(s.empty());
    s.enqueue(qr(makeRead4k(1), kTimeZero, 1));
    EXPECT_EQ(s.dequeue(kTimeZero).seq, 1u);
}

TEST(SchedulerNamesTest, ReportNames)
{
    EXPECT_EQ(NoopScheduler().name(), "noop");
    EXPECT_EQ(DeadlineScheduler().name(), "deadline");
    EXPECT_EQ(CfqScheduler().name(), "cfq");
}

} // namespace
} // namespace ssdcheck::usecases
