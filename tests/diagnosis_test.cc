/**
 * @file Integration tests: the black-box diagnosis must recover each
 * preset's Table-I ground truth without ever seeing it.
 */
#include <gtest/gtest.h>

#include "core/diagnosis.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::core {
namespace {

using ssd::allModels;
using ssd::makePreset;
using ssd::SsdDevice;
using ssd::SsdModel;

/** Full feature extraction on every Table-I preset. */
class DiagnosisPresetTest : public ::testing::TestWithParam<SsdModel>
{
};

TEST_P(DiagnosisPresetTest, RecoversTableIFeatures)
{
    const ssd::SsdConfig truth = makePreset(GetParam());
    SsdDevice dev(truth);
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();

    EXPECT_EQ(fs.allocationVolumeBits, truth.volumeBits)
        << "allocation volume bits";
    EXPECT_EQ(fs.gcVolumeBits, truth.volumeBits) << "gc volume bits";
    EXPECT_EQ(fs.bufferBytes, truth.bufferBytes) << "buffer size";

    const BufferTypeFeature expectedType =
        truth.bufferType == ssd::BufferType::Back ? BufferTypeFeature::Back
                                                  : BufferTypeFeature::Fore;
    EXPECT_EQ(fs.bufferType, expectedType);
    EXPECT_TRUE(fs.flushAlgorithms.fullTrigger);
    EXPECT_EQ(fs.flushAlgorithms.readTrigger, truth.readTriggerFlush);
    EXPECT_GT(fs.observedFlushOverheadNs, 0);
}

INSTANTIATE_TEST_SUITE_P(TableI, DiagnosisPresetTest,
                         ::testing::ValuesIn(allModels()),
                         [](const auto &info) {
                             return "SSD_" + ssd::toString(info.param);
                         });

TEST(DiagnosisScanTest, AllocScanFlatOnSingleVolumeDevice)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const AllocVolumeScan scan = runner.scanAllocationVolumes();
    EXPECT_TRUE(scan.volumeBits.empty());
    ASSERT_FALSE(scan.perBitMbps.empty());
    for (const auto &[bit, mbps] : scan.perBitMbps)
        EXPECT_GT(mbps / scan.baselineMbps, 0.85) << "bit " << bit;
}

TEST(DiagnosisScanTest, AllocScanHalvesAtVolumeBit)
{
    SsdDevice dev(makePreset(SsdModel::D));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const AllocVolumeScan scan = runner.scanAllocationVolumes();
    ASSERT_EQ(scan.volumeBits, (std::vector<uint32_t>{17}));
    for (const auto &[bit, mbps] : scan.perBitMbps) {
        const double ratio = mbps / scan.baselineMbps;
        if (bit == 17)
            EXPECT_LT(ratio, 0.7);
        else
            EXPECT_GT(ratio, 0.8) << "bit " << bit;
    }
}

TEST(DiagnosisScanTest, GcScanPValuesNearZeroOnlyOnVolumeBits)
{
    SsdDevice dev(makePreset(SsdModel::E));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    runner.precondition();
    const GcVolumeScan scan = runner.scanGcVolumes();
    EXPECT_EQ(scan.gcVolumeBits, (std::vector<uint32_t>{17, 18}));
    for (const auto &[bit, p] : scan.perBitPValue) {
        if (bit == 17 || bit == 18)
            EXPECT_LT(p, 0.001) << "bit " << bit;
        else
            EXPECT_GT(p, 0.001) << "bit " << bit;
    }
}

TEST(DiagnosisScanTest, FixedPatternYieldsRegularGcIntervals)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    runner.precondition();
    const GcVolumeScan scan = runner.scanGcVolumes();
    ASSERT_GE(scan.fixedIntervals.size(), 50u);
    // Self-invalidation: every interval within a sane band.
    for (const uint32_t iv : scan.fixedIntervals) {
        EXPECT_GT(iv, 10u);
        EXPECT_LT(iv, 5000u);
    }
}

TEST(DiagnosisWbTest, BackgroundReadTestSeesPeriodicSpikes)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    runner.sequentialFill();
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 248u * 1024);
    EXPECT_EQ(wb.bufferType, BufferTypeFeature::Back);
    EXPECT_TRUE(wb.flushAlgorithms.fullTrigger);
    EXPECT_FALSE(wb.flushAlgorithms.readTrigger);
    ASSERT_FALSE(wb.readLatencySeries.empty());
    // Fig. 6: some reads spike above the threshold, most do not.
    size_t spikes = 0;
    for (const auto &[w, lat] : wb.readLatencySeries)
        spikes += lat > sim::microseconds(250) ? 1 : 0;
    EXPECT_GT(spikes, 10u);
    EXPECT_LT(spikes, wb.readLatencySeries.size() / 4);
}

TEST(DiagnosisWbTest, ReadTriggerDeviceDiagnosedFore)
{
    SsdDevice dev(makePreset(SsdModel::F));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    runner.sequentialFill();
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 128u * 1024);
    EXPECT_EQ(wb.bufferType, BufferTypeFeature::Fore);
    EXPECT_TRUE(wb.flushAlgorithms.readTrigger);
}

TEST(DiagnosisWbTest, OptimalDeviceYieldsNoBufferModel)
{
    // A device with no irregularity at all: Algorithm 1 must return
    // "nothing found" rather than inventing a buffer.
    SsdDevice dev(ssd::makePrototype(ssd::PrototypeVariant::Optimal));
    DiagnosisConfig cfg;
    cfg.precondition = false; // no GC to wait for
    DiagnosisRunner runner(dev, cfg);
    const WbAnalysis wb = runner.analyzeWriteBuffer({});
    EXPECT_EQ(wb.bufferBytes, 0u);
    EXPECT_EQ(wb.bufferType, BufferTypeFeature::Unknown);
    EXPECT_FALSE(wb.flushAlgorithms.fullTrigger);
    EXPECT_FALSE(wb.flushAlgorithms.readTrigger);
}

TEST(DiagnosisTest, NvmBackedSsdIsDiagnosable)
{
    // Paper §VI: the methodology is medium-agnostic. An NVM-backed
    // device with the same buffered-write + GC structure yields a
    // usable model through the identical black-box snippets.
    SsdDevice dev(ssd::makeNvmBackedSsd());
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    EXPECT_TRUE(fs.bufferModelUsable());
    EXPECT_EQ(fs.bufferBytes, 64u * 1024);
    EXPECT_EQ(fs.bufferType, BufferTypeFeature::Back);
    EXPECT_TRUE(fs.allocationVolumeBits.empty());
}

TEST(DiagnosisTest, TimeAdvancesMonotonically)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{},
                           sim::kTimeZero + sim::seconds(5));
    EXPECT_EQ(runner.now(), sim::kTimeZero + sim::seconds(5));
    runner.sequentialFill();
    EXPECT_GT(runner.now(), sim::kTimeZero + sim::seconds(5));
}

} // namespace
} // namespace ssdcheck::core
