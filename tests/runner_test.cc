/** @file Unit tests for usecases/runner.h (replay engines). */
#include <gtest/gtest.h>

#include "ssd/ssd_device.h"
#include "usecases/runner.h"
#include "usecases/scheduler.h"
#include "workload/synthetic.h"

namespace ssdcheck::usecases {
namespace {

using sim::microseconds;
using sim::milliseconds;

ssd::SsdConfig
cfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 8192;
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(ClosedLoopRunnerTest, RunsWholeTrace)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    const auto trace = workload::buildRandomWriteTrace(2000, 8192, 1);
    const StreamResult res = runClosedLoop(dev, trace, 4, 0, sim::kTimeZero);
    EXPECT_EQ(res.requests, 2000u);
    EXPECT_EQ(res.latency.count(), 2000u);
    EXPECT_EQ(res.bytes, 2000u * 4096);
    EXPECT_GT(res.endTime, res.startTime);
    EXPECT_GT(res.throughputMbps(), 0.0);
}

TEST(ClosedLoopRunnerTest, ThinktimeSlowsTheStream)
{
    ssd::SsdDevice dev1(cfg()), dev2(cfg());
    const auto trace = workload::buildRandomWriteTrace(500, 8192, 1);
    const auto fast = runClosedLoop(dev1, trace, 1, 0, sim::kTimeZero);
    const auto slow = runClosedLoop(dev2, trace, 1, microseconds(500), sim::kTimeZero);
    EXPECT_GT(slow.endTime - slow.startTime,
              fast.endTime - fast.startTime);
}

TEST(ClosedLoopRunnerTest, HigherQueueDepthRaisesThroughput)
{
    ssd::SsdDevice dev1(cfg()), dev2(cfg());
    dev1.precondition();
    dev2.precondition();
    workload::MixedTraceParams p;
    p.requests = 3000;
    p.writeFraction = 0.0; // reads exploit the parallel read pipeline
    p.spanPages = 8192;
    const auto trace = workload::buildMixedTrace(p, "r");
    const auto qd1 = runClosedLoop(dev1, trace, 1, 0, sim::kTimeZero);
    const auto qd8 = runClosedLoop(dev2, trace, 8, 0, sim::kTimeZero);
    EXPECT_GT(qd8.throughputMbps(), qd1.throughputMbps() * 1.5);
}

TEST(ClosedLoopRunnerTest, SeparatesReadAndWriteLatencies)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    const auto trace = workload::buildRwMixedTrace(2000, 8192, 2);
    const StreamResult res = runClosedLoop(dev, trace, 1, 0, sim::kTimeZero);
    EXPECT_GT(res.readLatency.count(), 0u);
    EXPECT_GT(res.writeLatency.count(), 0u);
    EXPECT_EQ(res.readLatency.count() + res.writeLatency.count(),
              res.latency.count());
}

TEST(TenantRunnerTest, TenantsInterleaveOnOneDevice)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    const auto t1 = workload::buildRandomWriteTrace(1000, 4096, 3);
    auto t2 = workload::buildMixedTrace(
        []() {
            workload::MixedTraceParams p;
            p.requests = 1000;
            p.writeFraction = 0.0;
            p.spanPages = 4096;
            p.seed = 4;
            return p;
        }(),
        "reads");
    std::vector<TenantSpec> tenants(2);
    tenants[0].trace = &t1;
    tenants[0].dev = &dev;
    tenants[0].name = "writer";
    tenants[1].trace = &t2;
    tenants[1].dev = &dev;
    tenants[1].name = "reader";
    const auto results = runTenantsClosedLoop(tenants, sim::kTimeZero);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].requests, 1000u);
    EXPECT_EQ(results[1].requests, 1000u);
    EXPECT_EQ(results[0].name, "writer");
    // Both ran concurrently: spans overlap.
    EXPECT_GT(results[0].endTime, sim::kTimeZero);
    EXPECT_GT(results[1].endTime, sim::kTimeZero);
}

TEST(ScheduledRunnerTest, CompletesAllArrivalsAndMeasuresQueueing)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    auto trace = workload::buildRwMixedTrace(2000, 8192, 5);
    sim::Rng rng(6);
    trace.assignPoissonArrivals(5000.0, rng);
    NoopScheduler sched;
    const auto res = runScheduled(dev, sched, trace, sim::kTimeZero, nullptr);
    EXPECT_EQ(res.stream.requests, 2000u);
    EXPECT_EQ(res.schedulerName, "noop");
    EXPECT_GE(res.maxQueueDepth, 1u);
    // Queueing latency can only exceed pure device latency.
    EXPECT_GT(res.stream.latency.mean(), 0.0);
}

TEST(ScheduledRunnerTest, OverloadGrowsQueue)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    auto trace = workload::buildRandomWriteTrace(3000, 8192, 7);
    sim::Rng rng(8);
    trace.assignPoissonArrivals(1e6, rng); // far beyond service rate
    NoopScheduler sched;
    const auto res = runScheduled(dev, sched, trace, sim::kTimeZero, nullptr);
    EXPECT_GT(res.maxQueueDepth, 100u);
}

TEST(ScheduledRunnerTest, WiderDispatchRaisesReadThroughput)
{
    // Read-only arrivals above QD1 service capacity: a wider dispatch
    // window exploits the device's parallel read pipeline.
    auto run = [&](uint32_t width) {
        ssd::SsdDevice dev(cfg());
        dev.precondition();
        workload::MixedTraceParams p;
        p.requests = 4000;
        p.writeFraction = 0.0;
        p.spanPages = 8192;
        p.seed = 12;
        auto trace = workload::buildMixedTrace(p, "r");
        sim::Rng rng(13);
        trace.assignPoissonArrivals(30000.0, rng);
        NoopScheduler sched;
        const auto res =
            runScheduled(dev, sched, trace, sim::kTimeZero, nullptr, width);
        return res.stream.endTime - res.stream.startTime;
    };
    EXPECT_LT(run(8), run(1));
}

TEST(ScheduledRunnerTest, WideDispatchCompletesEverything)
{
    ssd::SsdDevice dev(cfg());
    dev.precondition();
    auto trace = workload::buildRwMixedTrace(3000, 8192, 14);
    sim::Rng rng(15);
    trace.assignPoissonArrivals(8000.0, rng);
    DeadlineScheduler sched;
    const auto res = runScheduled(dev, sched, trace, sim::kTimeZero, nullptr, 4);
    EXPECT_EQ(res.stream.requests, 3000u);
}

TEST(ScheduledRunnerTest, IdlePeriodsAreSkipped)
{
    ssd::SsdDevice dev(cfg());
    auto trace = workload::buildRandomWriteTrace(10, 1024, 9);
    sim::Rng rng(10);
    trace.assignPoissonArrivals(10.0, rng); // ~100ms gaps
    NoopScheduler sched;
    const auto res = runScheduled(dev, sched, trace, sim::kTimeZero, nullptr);
    EXPECT_EQ(res.stream.requests, 10u);
    // Makespan is dominated by arrival gaps, not service.
    EXPECT_GT(res.stream.endTime, sim::kTimeZero + milliseconds(100));
}

} // namespace
} // namespace ssdcheck::usecases
