/** @file Unit tests for usecases/hybrid.h (Hybrid PAS tiering). */
#include <gtest/gtest.h>

#include "core/ssdcheck.h"
#include "nvm/nvm_device.h"
#include "ssd/ssd_device.h"
#include "usecases/hybrid.h"

namespace ssdcheck::usecases {
namespace {

using blockdev::makeRead4k;
using blockdev::makeWrite4k;
using sim::microseconds;
using sim::milliseconds;
using sim::SimTime;

ssd::SsdConfig
ssdCfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 8192;
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

nvm::NvmConfig
nvmCfg(uint64_t pages)
{
    nvm::NvmConfig c;
    c.capacityPages = pages;
    c.jitterSigma = 0.0;
    return c;
}

core::FeatureSet
features()
{
    core::FeatureSet fs;
    fs.bufferBytes = 8 * 4096;
    fs.bufferType = core::BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = milliseconds(2);
    return fs;
}

TEST(HybridTierTest, BaselineAbsorbsWritesUntilFull)
{
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(16));
    HybridConfig cfg;
    cfg.drainPeriod = sim::seconds(100); // effectively no drain
    HybridTier tier(ssd, nvm, nullptr, HybridMode::Baseline, cfg);

    SimTime t;
    for (uint64_t p = 0; p < 16; ++p) {
        const auto res = tier.submit(makeWrite4k(p), t);
        EXPECT_LT(res.latency(), microseconds(10)) << p; // NVM speed
        t = res.completeTime;
    }
    EXPECT_TRUE(nvm.full());
    // Next write spills to the SSD (backpressure).
    const auto res = tier.submit(makeWrite4k(99), t);
    EXPECT_GE(res.latency(), microseconds(20));
    EXPECT_EQ(tier.backpressureWrites(), 1u);
    EXPECT_EQ(tier.ssdDirectWrites(), 1u);
}

TEST(HybridTierTest, DrainMovesPagesToSsd)
{
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(64));
    HybridConfig cfg;
    cfg.drainPeriod = milliseconds(1);
    cfg.drainBatchPages = 4;
    cfg.drainThresholdFraction = 0.0; // drain whenever dirty
    HybridTier tier(ssd, nvm, nullptr, HybridMode::Baseline, cfg);

    SimTime t;
    for (uint64_t p = 0; p < 8; ++p)
        t = tier.submit(makeWrite4k(p), t).completeTime;
    EXPECT_EQ(nvm.dirtyPages(), 8u);
    // Let the background thread catch up by touching the tier later.
    tier.submit(makeRead4k(100), t + milliseconds(10));
    EXPECT_LT(nvm.dirtyPages(), 8u);
    // Drained pages are now on the SSD.
    uint64_t payload = 0;
    EXPECT_TRUE(ssd.peekPage(0, &payload));
}

TEST(HybridTierTest, ReadsServedFromNvmWhenDirty)
{
    ssd::SsdDevice ssd(ssdCfg());
    ssd.precondition();
    nvm::NvmDevice nvm(nvmCfg(64));
    HybridConfig cfg;
    cfg.drainPeriod = sim::seconds(100);
    HybridTier tier(ssd, nvm, nullptr, HybridMode::Baseline, cfg);

    SimTime t = tier.submit(makeWrite4k(5), sim::kTimeZero).completeTime;
    const auto hit = tier.submit(makeRead4k(5), t);
    EXPECT_LT(hit.latency(), microseconds(10));
    const auto miss = tier.submit(makeRead4k(6), hit.completeTime);
    EXPECT_GT(miss.latency(), microseconds(50));
}

TEST(HybridTierTest, HybridPasSplitsNlWritesByWeight)
{
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(100000));
    core::SsdCheck check(features());
    HybridConfig cfg;
    cfg.bufferWeight = 0.5;
    cfg.drainPeriod = sim::seconds(100);
    HybridTier tier(ssd, nvm, &check, HybridMode::HybridPas, cfg);

    SimTime t;
    const int n = 4000;
    sim::Rng rng(3);
    for (int i = 0; i < n; ++i) {
        const auto res =
            tier.submit(makeWrite4k(rng.nextBelow(8192)), t);
        t = res.completeTime;
    }
    const double nvmShare =
        static_cast<double>(nvm.totalWritesAbsorbed()) / n;
    // NL writes split ~50/50; HL-predicted ones all go to NVM, so the
    // share sits at or slightly above the weight.
    EXPECT_GT(nvmShare, 0.45);
    EXPECT_LT(nvmShare, 0.65);
    EXPECT_GT(tier.ssdDirectWrites(), 0u);
}

TEST(HybridTierTest, HybridReducesNvmPressureVsBaseline)
{
    const int n = 3000;
    auto run = [&](HybridMode mode) {
        ssd::SsdDevice ssd(ssdCfg());
        nvm::NvmDevice nvm(nvmCfg(256));
        core::SsdCheck check(features());
        HybridConfig cfg;
        cfg.bufferWeight = 0.5;
        cfg.drainPeriod = milliseconds(1);
        cfg.drainBatchPages = 8;
        HybridTier tier(ssd, nvm, mode == HybridMode::HybridPas ? &check
                                                                : nullptr,
                        mode, cfg);
        SimTime t;
        sim::Rng rng(5);
        for (int i = 0; i < n; ++i)
            t = tier.submit(makeWrite4k(rng.nextBelow(8192)), t)
                    .completeTime;
        return tier.nvmWritePages();
    };
    EXPECT_LT(run(HybridMode::HybridPas), run(HybridMode::Baseline));
}

TEST(HybridTierTest, SsdWriteInvalidatesStaleNvmCopy)
{
    // A newer copy written to the SSD must invalidate the dirty NVM
    // copy, or a later drain would clobber the new data.
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(4));
    HybridConfig cfg;
    cfg.drainPeriod = sim::seconds(100); // manual drain control
    HybridTier tier(ssd, nvm, nullptr, HybridMode::Baseline, cfg);

    SimTime t;
    // Fill the NVM: pages 0..3 dirty.
    for (uint64_t p = 0; p < 4; ++p)
        t = tier.submit(makeWrite4k(p), t).completeTime;
    ASSERT_TRUE(nvm.full());
    // Rewrite page 1: pool full -> routed to the SSD; the stale NVM
    // copy must be dropped.
    t = tier.submit(makeWrite4k(1), t).completeTime;
    EXPECT_FALSE(nvm.holds(1));
    // Draining everything never returns page 1.
    const auto drained = nvm.takeDirty(10);
    for (const uint64_t p : drained)
        EXPECT_NE(p, 1u);
}

TEST(HybridTierTest, PurgeClearsBothTiers)
{
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(64));
    HybridTier tier(ssd, nvm, nullptr, HybridMode::Baseline, {});
    SimTime t = tier.submit(makeWrite4k(5), sim::kTimeZero).completeTime;
    tier.purge(t);
    EXPECT_EQ(nvm.dirtyPages(), 0u);
    uint64_t payload = 0;
    EXPECT_FALSE(ssd.peekPage(5, &payload));
}

TEST(HybridTierTest, Names)
{
    ssd::SsdDevice ssd(ssdCfg());
    nvm::NvmDevice nvm(nvmCfg(64));
    HybridTier base(ssd, nvm, nullptr, HybridMode::Baseline, {});
    EXPECT_NE(base.name().find("baseline"), std::string::npos);
}

} // namespace
} // namespace ssdcheck::usecases
