/** @file Unit tests for ssd/garbage_collector.h. */
#include <gtest/gtest.h>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/garbage_collector.h"
#include "ssd/page_mapper.h"

namespace ssdcheck::ssd {
namespace {

using core::Lpn;

nand::NandGeometry
geo()
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 4;
    g.blocksPerPlane = 8;
    g.pagesPerBlock = 8;
    return g; // 32 blocks
}

class GcTest : public ::testing::Test
{
  protected:
    GcTest()
        : arr_(geo(), nand::NandTiming{}), m_(arr_, 160),
          gc_(m_, arr_, 3, 6)
    {
    }

    void churn(uint64_t writes, uint64_t span = 160)
    {
        sim::Rng rng(99);
        for (uint64_t i = 0; i < writes; ++i) {
            if (gc_.needed())
                gc_.collect();
            m_.writePage(Lpn{rng.nextBelow(span)}, i);
        }
    }

    nand::NandArray arr_;
    PageMapper m_;
    GarbageCollector gc_;
};

TEST_F(GcTest, NotNeededOnFreshDevice)
{
    EXPECT_FALSE(gc_.needed());
    // Collect on a device with only free blocks reclaims nothing.
    const GcResult res = gc_.collect();
    EXPECT_FALSE(res.ran());
    EXPECT_EQ(gc_.invocations(), 0u);
}

TEST_F(GcTest, NeededWhenPoolDepletes)
{
    // Fill enough blocks to drop below the low watermark.
    uint64_t lpn = 0;
    while (m_.freeBlocks() >= 3) {
        m_.writePage(Lpn{lpn % 160}, lpn);
        ++lpn;
    }
    EXPECT_TRUE(gc_.needed());
}

TEST_F(GcTest, CollectReachesHighWatermark)
{
    churn(2000);
    while (!gc_.needed())
        m_.writePage(Lpn{0}, 1);
    const GcResult res = gc_.collect();
    EXPECT_TRUE(res.ran());
    EXPECT_GE(m_.freeBlocks(), 6u);
    EXPECT_EQ(m_.checkConsistency(), "");
}

TEST_F(GcTest, ExtraBlocksRaiseTheTarget)
{
    churn(2000);
    while (!gc_.needed())
        m_.writePage(Lpn{0}, 1);
    gc_.collect(2);
    EXPECT_GE(m_.freeBlocks(), 8u);
}

TEST_F(GcTest, DurationAccountsMovesAndErases)
{
    churn(3000);
    while (!gc_.needed())
        m_.writePage(Lpn{0}, 1);
    const GcResult res = gc_.collect();
    ASSERT_TRUE(res.ran());
    // Lower bound: at least one erase wave.
    EXPECT_GE(res.duration, nand::NandTiming{}.eraseLatency);
    // Upper bound: serial cost of everything it did.
    const nand::NandTiming t;
    const sim::SimDuration upper =
        static_cast<sim::SimDuration>(res.validMoved) *
            (t.readLatency + t.programLatency) +
        static_cast<sim::SimDuration>(res.blocksErased) * t.eraseLatency;
    EXPECT_LE(res.duration, upper + 1);
}

TEST_F(GcTest, InvocationsCount)
{
    churn(5000);
    EXPECT_GT(gc_.invocations(), 2u);
}

TEST_F(GcTest, SelfInvalidationMakesEraseOnlyGc)
{
    // Steady-state hammering of one address: victims fully invalid.
    churn(1000); // mixed warmup
    uint64_t moved = 0, erased = 0;
    for (int i = 0; i < 3000; ++i) {
        if (gc_.needed()) {
            const GcResult res = gc_.collect();
            // Only count once in the late (converged) phase.
            if (i > 1500) {
                moved += res.validMoved;
                erased += res.blocksErased;
            }
        }
        m_.writePage(Lpn{3}, i);
    }
    ASSERT_GT(erased, 0u);
    EXPECT_LT(static_cast<double>(moved) / static_cast<double>(erased), 1.0);
}

} // namespace
} // namespace ssdcheck::ssd
