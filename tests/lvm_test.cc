/** @file Unit tests for usecases/lvm.h (Linear-LVM and VA-LVM). */
#include <gtest/gtest.h>

#include <set>

#include "ssd/ssd_device.h"
#include "usecases/lvm.h"

namespace ssdcheck::usecases {
namespace {

using blockdev::kSectorsPerPage;
using blockdev::makeRead4k;
using blockdev::makeWrite4k;

TEST(SpliceVolumeBitsTest, SingleBitInsertion)
{
    const std::vector<uint32_t> bits = {4};
    // Low bits preserved, id bit inserted, high bits shifted.
    EXPECT_EQ(spliceVolumeBits(0b0000, 0, bits), 0b00000u);
    EXPECT_EQ(spliceVolumeBits(0b0000, 1, bits), 0b10000u);
    EXPECT_EQ(spliceVolumeBits(0b1111, 0, bits), 0b01111u);
    EXPECT_EQ(spliceVolumeBits(0b10000, 0, bits), 0b100000u);
    EXPECT_EQ(spliceVolumeBits(0b10000, 1, bits), 0b110000u);
}

TEST(SpliceVolumeBitsTest, TwoBitInsertion)
{
    const std::vector<uint32_t> bits = {4, 6};
    for (uint32_t id = 0; id < 4; ++id) {
        const uint64_t out = spliceVolumeBits(0, id, bits);
        EXPECT_EQ((out >> 4) & 1, (id >> 0) & 1) << id;
        EXPECT_EQ((out >> 6) & 1, (id >> 1) & 1) << id;
    }
}

TEST(SpliceVolumeBitsTest, MappingIsInjectiveAcrossVolumes)
{
    const std::vector<uint32_t> bits = {4, 6};
    std::set<uint64_t> seen;
    for (uint32_t id = 0; id < 4; ++id) {
        for (uint64_t lba = 0; lba < 256; ++lba)
            EXPECT_TRUE(seen.insert(spliceVolumeBits(lba, id, bits)).second);
    }
    EXPECT_EQ(seen.size(), 4u * 256);
}

TEST(SpliceVolumeBitsTest, VolumeBitValueAlwaysMatchesId)
{
    const std::vector<uint32_t> bits = {17};
    for (uint64_t lba = 0; lba < 100000; lba += 777) {
        EXPECT_EQ((spliceVolumeBits(lba, 0, bits) >> 17) & 1, 0u);
        EXPECT_EQ((spliceVolumeBits(lba, 1, bits) >> 17) & 1, 1u);
    }
}

ssd::SsdConfig
twoVolCfg()
{
    ssd::SsdConfig c;
    c.userCapacityPages = 16 * 1024;
    c.volumeBits = {10};
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(LvmTest, LinearVolumesAreContiguousSlices)
{
    ssd::SsdDevice dev(twoVolCfg());
    const auto vols = makeLinearVolumes(dev, 2);
    ASSERT_EQ(vols.size(), 2u);
    EXPECT_EQ(vols[0]->capacitySectors(), dev.capacitySectors() / 2);
    // Writes through each logical volume land in disjoint ranges.
    const uint64_t stamp0 = 100, stamp1 = 200;
    auto *d0 = dynamic_cast<blockdev::BlockDevice *>(vols[0].get());
    ASSERT_NE(d0, nullptr);
    vols[0]->submit(makeWrite4k(0), sim::kTimeZero);
    vols[1]->submit(makeWrite4k(0), sim::kTimeZero + sim::microseconds(10));
    (void)stamp0;
    (void)stamp1;
}

TEST(LvmTest, VolumeAwareVolumesPinTheVolumeBit)
{
    ssd::SsdConfig cfg = twoVolCfg();
    ssd::SsdDevice dev(cfg);
    const auto vols = makeVolumeAwareVolumes(dev, cfg.volumeBits);
    ASSERT_EQ(vols.size(), 2u);
    // Drive traffic through both logical volumes; each must only
    // touch its own internal volume.
    sim::SimTime t;
    for (uint64_t p = 0; p < 200; ++p) {
        t = vols[0]->submit(makeWrite4k(p), t).completeTime;
        t = vols[1]->submit(makeWrite4k(p), t).completeTime;
    }
    EXPECT_EQ(dev.volumeCounters(0).writes, 200u);
    EXPECT_EQ(dev.volumeCounters(1).writes, 200u);
}

TEST(LvmTest, LinearVolumesStraddleInternalVolumes)
{
    // The conventional layout is oblivious: a single linear volume
    // spans both internal volumes (this is what causes interference).
    ssd::SsdConfig cfg = twoVolCfg();
    ssd::SsdDevice dev(cfg);
    const auto vols = makeLinearVolumes(dev, 2);
    sim::SimTime t;
    // Volume-bit 10 = sector granularity 1024 sectors = 128 pages:
    // sweep 400 pages of the first linear volume -> hits both.
    for (uint64_t p = 0; p < 400; ++p)
        t = vols[0]->submit(makeWrite4k(p), t).completeTime;
    EXPECT_GT(dev.volumeCounters(0).writes, 0u);
    EXPECT_GT(dev.volumeCounters(1).writes, 0u);
}

TEST(LvmTest, DataRoundTripsThroughVaLvm)
{
    ssd::SsdConfig cfg = twoVolCfg();
    ssd::SsdDevice dev(cfg);
    const auto vols = makeVolumeAwareVolumes(dev, cfg.volumeBits);
    // Same logical page on both volumes must be independent data.
    sim::SimTime t;
    for (uint32_t v = 0; v < 2; ++v) {
        auto *lv = vols[v].get();
        blockdev::IoRequest w = makeWrite4k(7);
        // Route through the parent with stamps via physical peek.
        const auto res = lv->submit(w, t);
        t = res.completeTime;
    }
    // Physical pages differ (mapped through different volume bits).
    const uint64_t phys0 = spliceVolumeBits(7 * kSectorsPerPage, 0,
                                            cfg.volumeBits) /
                           kSectorsPerPage;
    const uint64_t phys1 = spliceVolumeBits(7 * kSectorsPerPage, 1,
                                            cfg.volumeBits) /
                           kSectorsPerPage;
    EXPECT_NE(phys0, phys1);
    uint64_t payload = 0;
    EXPECT_TRUE(dev.peekPage(phys0, &payload));
    EXPECT_TRUE(dev.peekPage(phys1, &payload));
}

TEST(LvmTest, OutOfRangeAccessAssertsInDebug)
{
    ssd::SsdDevice dev(twoVolCfg());
    const auto vols = makeLinearVolumes(dev, 2);
    const uint64_t lastPage = vols[0]->capacitySectors() / kSectorsPerPage - 1;
    // In-range access at the very end works.
    vols[0]->submit(makeRead4k(lastPage), sim::kTimeZero);
#ifndef NDEBUG
    EXPECT_DEATH(vols[0]->submit(makeRead4k(lastPage + 1),
                                 sim::kTimeZero + sim::microseconds(10)),
                 "");
#endif
}

} // namespace
} // namespace ssdcheck::usecases
