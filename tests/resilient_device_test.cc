/**
 * @file Unit tests for blockdev/resilient_device.h: retry policy,
 * capped exponential backoff, timeout classification, and per-status
 * counters, driven by a scripted fake device.
 */
#include <gtest/gtest.h>

#include <vector>

#include "blockdev/resilient_device.h"

namespace ssdcheck::blockdev {
namespace {

using sim::microseconds;
using sim::milliseconds;

/** One scripted attempt outcome. */
struct Step
{
    IoStatus status = IoStatus::Ok;
    sim::SimDuration latency = microseconds(100);
};

/** Replays a fixed script of completions, recording submit times. */
class ScriptedDevice : public BlockDevice
{
  public:
    explicit ScriptedDevice(std::vector<Step> script)
        : script_(std::move(script))
    {
    }

    IoResult submit(const IoRequest &req, sim::SimTime now) override
    {
        (void)req;
        submits.push_back(now);
        const Step s = next_ < script_.size() ? script_[next_++] : Step{};
        IoResult res;
        res.submitTime = now;
        res.completeTime = now + s.latency;
        res.status = s.status;
        return res;
    }

    uint64_t capacitySectors() const override { return 1 << 20; }
    void purge(sim::SimTime) override {}
    std::string name() const override { return "scripted"; }

    std::vector<sim::SimTime> submits;

  private:
    std::vector<Step> script_;
    size_t next_ = 0;
};

TEST(IoStatusTest, NamesAndRetryability)
{
    EXPECT_EQ(toString(IoStatus::Ok), "ok");
    EXPECT_EQ(toString(IoStatus::MediaError), "media-error");
    EXPECT_EQ(toString(IoStatus::Timeout), "timeout");
    EXPECT_EQ(toString(IoStatus::DeviceFault), "device-fault");
    EXPECT_FALSE(isRetryable(IoStatus::Ok));
    EXPECT_TRUE(isRetryable(IoStatus::MediaError));
    EXPECT_TRUE(isRetryable(IoStatus::Timeout));
    EXPECT_FALSE(isRetryable(IoStatus::DeviceFault));
}

TEST(ResilientDeviceTest, HealthyPassThrough)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(80)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), milliseconds(1));
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(res.submitTime, milliseconds(1));
    EXPECT_EQ(res.latency(), microseconds(80));
    EXPECT_EQ(dev.counters().totalErrors(), 0u);
    EXPECT_EQ(dev.name(), "scripted");
    EXPECT_EQ(dev.capacitySectors(), 1u << 20);
}

TEST(ResilientDeviceTest, MediaErrorRetriedThenRecovers)
{
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(500)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), 0);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 2u);
    // submitTime spans the whole exchange from the original submission.
    EXPECT_EQ(res.submitTime, 0);
    ASSERT_EQ(inner.submits.size(), 2u);
    // The retry waits out the failed attempt plus the first backoff.
    EXPECT_EQ(inner.submits[1],
              microseconds(500) + dev.config().backoffBase);
    EXPECT_EQ(dev.counters().mediaErrors, 1u);
    EXPECT_EQ(dev.counters().retries, 1u);
    EXPECT_EQ(dev.counters().recovered, 1u);
    EXPECT_EQ(dev.counters().exhausted, 0u);
}

TEST(ResilientDeviceTest, BackoffDoublesUpToCap)
{
    ScriptedDevice inner({});
    ResilienceConfig cfg;
    cfg.backoffBase = microseconds(200);
    cfg.backoffCap = microseconds(1000);
    ResilientDevice dev(inner, cfg);
    EXPECT_EQ(dev.backoffFor(1), microseconds(200));
    EXPECT_EQ(dev.backoffFor(2), microseconds(400));
    EXPECT_EQ(dev.backoffFor(3), microseconds(800));
    EXPECT_EQ(dev.backoffFor(4), microseconds(1000)); // capped
    EXPECT_EQ(dev.backoffFor(10), microseconds(1000));
}

TEST(ResilientDeviceTest, ExhaustsAfterMaxRetries)
{
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)}});
    ResilienceConfig cfg;
    cfg.maxRetries = 3;
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeWrite4k(0), 0);
    EXPECT_EQ(res.status, IoStatus::MediaError);
    EXPECT_EQ(res.attempts, 4u); // 1 original + 3 retries
    EXPECT_EQ(inner.submits.size(), 4u);
    EXPECT_EQ(dev.counters().mediaErrors, 4u);
    EXPECT_EQ(dev.counters().retries, 3u);
    EXPECT_EQ(dev.counters().exhausted, 1u);
    EXPECT_EQ(dev.counters().recovered, 0u);
}

TEST(ResilientDeviceTest, DeviceFaultIsPermanent)
{
    ScriptedDevice inner({{IoStatus::DeviceFault, microseconds(5)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), 0);
    EXPECT_EQ(res.status, IoStatus::DeviceFault);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(inner.submits.size(), 1u); // no retry issued
    EXPECT_EQ(dev.counters().deviceFaults, 1u);
    EXPECT_EQ(dev.counters().retries, 0u);
}

TEST(ResilientDeviceTest, SlowCompletionClassifiedTimeoutAndRetried)
{
    ResilienceConfig cfg;
    cfg.timeoutAfter = milliseconds(500);
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(800)}, // too slow
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), 0);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 2u);
    EXPECT_EQ(dev.counters().timeouts, 1u);
    EXPECT_EQ(dev.counters().recovered, 1u);
    ASSERT_EQ(inner.submits.size(), 2u);
    // The host gives up at the timeout threshold, not at the (later)
    // actual completion: the retry goes out from there.
    EXPECT_LE(inner.submits[1],
              milliseconds(500) + dev.backoffFor(1));
}

TEST(ResilientDeviceTest, TimeoutClassificationCanBeDisabled)
{
    ResilienceConfig cfg;
    cfg.timeoutAfter = 0;
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(900)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), 0);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(dev.counters().timeouts, 0u);
}

TEST(ResilientDeviceTest, ZeroMaxRetriesFailsFast)
{
    ResilienceConfig cfg;
    cfg.maxRetries = 0;
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(100)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), 0);
    EXPECT_EQ(res.status, IoStatus::MediaError);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(dev.counters().exhausted, 1u);
}

} // namespace
} // namespace ssdcheck::blockdev
