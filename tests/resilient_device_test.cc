/**
 * @file Unit tests for blockdev/resilient_device.h: retry policy,
 * capped exponential backoff, timeout classification, and per-status
 * counters, driven by a scripted fake device.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "blockdev/resilient_device.h"
#include "sim/rng.h"

namespace ssdcheck::blockdev {
namespace {

using sim::microseconds;
using sim::milliseconds;

/** One scripted attempt outcome. */
struct Step
{
    IoStatus status = IoStatus::Ok;
    sim::SimDuration latency = microseconds(100);
};

/** Replays a fixed script of completions, recording submit times. */
class ScriptedDevice : public BlockDevice
{
  public:
    explicit ScriptedDevice(std::vector<Step> script)
        : script_(std::move(script))
    {
    }

    IoResult submit(const IoRequest &req, sim::SimTime now) override
    {
        (void)req;
        submits.push_back(now);
        const Step s = next_ < script_.size() ? script_[next_++] : Step{};
        IoResult res;
        res.submitTime = now;
        res.completeTime = now + s.latency;
        res.status = s.status;
        return res;
    }

    uint64_t capacitySectors() const override { return 1 << 20; }
    void purge(sim::SimTime) override {}
    std::string name() const override { return "scripted"; }

    std::vector<sim::SimTime> submits;

  private:
    std::vector<Step> script_;
    size_t next_ = 0;
};

TEST(IoStatusTest, NamesAndRetryability)
{
    EXPECT_EQ(toString(IoStatus::Ok), "ok");
    EXPECT_EQ(toString(IoStatus::MediaError), "media-error");
    EXPECT_EQ(toString(IoStatus::Timeout), "timeout");
    EXPECT_EQ(toString(IoStatus::DeviceFault), "device-fault");
    EXPECT_FALSE(isRetryable(IoStatus::Ok));
    EXPECT_TRUE(isRetryable(IoStatus::MediaError));
    EXPECT_TRUE(isRetryable(IoStatus::Timeout));
    EXPECT_FALSE(isRetryable(IoStatus::DeviceFault));
}

TEST(ResilientDeviceTest, HealthyPassThrough)
{
    ScriptedDevice inner({{IoStatus::Ok, microseconds(80)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero + milliseconds(1));
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(res.submitTime, sim::kTimeZero + milliseconds(1));
    EXPECT_EQ(res.latency(), microseconds(80));
    EXPECT_EQ(dev.counters().totalErrors(), 0u);
    EXPECT_EQ(dev.name(), "scripted");
    EXPECT_EQ(dev.capacitySectors(), 1u << 20);
}

TEST(ResilientDeviceTest, MediaErrorRetriedThenRecovers)
{
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(500)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 2u);
    // submitTime spans the whole exchange from the original submission.
    EXPECT_EQ(res.submitTime, sim::kTimeZero);
    ASSERT_EQ(inner.submits.size(), 2u);
    // The retry waits out the failed attempt plus the first backoff.
    EXPECT_EQ(inner.submits[1],
              sim::kTimeZero + microseconds(500) + dev.config().backoffBase);
    EXPECT_EQ(dev.counters().mediaErrors, 1u);
    EXPECT_EQ(dev.counters().retries, 1u);
    EXPECT_EQ(dev.counters().recovered, 1u);
    EXPECT_EQ(dev.counters().exhausted, 0u);
}

TEST(ResilientDeviceTest, BackoffDoublesUpToCap)
{
    ScriptedDevice inner({});
    ResilienceConfig cfg;
    cfg.backoffBase = microseconds(200);
    cfg.backoffCap = microseconds(1000);
    ResilientDevice dev(inner, cfg);
    EXPECT_EQ(dev.backoffFor(1), microseconds(200));
    EXPECT_EQ(dev.backoffFor(2), microseconds(400));
    EXPECT_EQ(dev.backoffFor(3), microseconds(800));
    EXPECT_EQ(dev.backoffFor(4), microseconds(1000)); // capped
    EXPECT_EQ(dev.backoffFor(10), microseconds(1000));
}

TEST(ResilientDeviceTest, ExhaustsAfterMaxRetries)
{
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)},
                          {IoStatus::MediaError, microseconds(100)}});
    ResilienceConfig cfg;
    cfg.maxRetries = 3;
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeWrite4k(0), sim::kTimeZero);
    EXPECT_EQ(res.status, IoStatus::MediaError);
    EXPECT_EQ(res.attempts, 4u); // 1 original + 3 retries
    EXPECT_EQ(inner.submits.size(), 4u);
    EXPECT_EQ(dev.counters().mediaErrors, 4u);
    EXPECT_EQ(dev.counters().retries, 3u);
    EXPECT_EQ(dev.counters().exhausted, 1u);
    EXPECT_EQ(dev.counters().recovered, 0u);
}

TEST(ResilientDeviceTest, DeviceFaultIsPermanent)
{
    ScriptedDevice inner({{IoStatus::DeviceFault, microseconds(5)}});
    ResilientDevice dev(inner);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero);
    EXPECT_EQ(res.status, IoStatus::DeviceFault);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(inner.submits.size(), 1u); // no retry issued
    EXPECT_EQ(dev.counters().deviceFaults, 1u);
    EXPECT_EQ(dev.counters().retries, 0u);
}

TEST(ResilientDeviceTest, SlowCompletionClassifiedTimeoutAndRetried)
{
    ResilienceConfig cfg;
    cfg.timeoutAfter = milliseconds(500);
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(800)}, // too slow
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 2u);
    EXPECT_EQ(dev.counters().timeouts, 1u);
    EXPECT_EQ(dev.counters().recovered, 1u);
    ASSERT_EQ(inner.submits.size(), 2u);
    // The host gives up at the timeout threshold, not at the (later)
    // actual completion: the retry goes out from there.
    EXPECT_LE(inner.submits[1],
              sim::kTimeZero + milliseconds(500) + dev.backoffFor(1));
}

TEST(ResilientDeviceTest, TimeoutClassificationCanBeDisabled)
{
    ResilienceConfig cfg;
    cfg.timeoutAfter = 0;
    ScriptedDevice inner({{IoStatus::Ok, milliseconds(900)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(dev.counters().timeouts, 0u);
}

// ---------------------------------------------------------------------
// Property tests: the contracts the resilience policy layer builds on.
// ---------------------------------------------------------------------

/** Device whose per-attempt outcome is drawn from a seeded stream:
 *  fast successes, retryable media errors, stalls past the timeout
 *  threshold, and permanent faults — the full classification space. */
class RandomFaultyDevice : public BlockDevice
{
  public:
    explicit RandomFaultyDevice(uint64_t seed) : rng_(seed) {}

    IoResult submit(const IoRequest &req, sim::SimTime now) override
    {
        (void)req;
        IoResult res;
        res.submitTime = now;
        const double roll = rng_.uniform01();
        sim::SimDuration lat;
        if (roll < 0.55) {
            res.status = IoStatus::Ok;
            lat = microseconds(rng_.uniformInt(50, 2000));
        } else if (roll < 0.80) {
            res.status = IoStatus::MediaError;
            lat = microseconds(rng_.uniformInt(200, 5000));
        } else if (roll < 0.95) {
            // Slow success: the host classifies it Timeout and retries.
            res.status = IoStatus::Ok;
            lat = milliseconds(rng_.uniformInt(600, 900));
        } else {
            res.status = IoStatus::DeviceFault;
            lat = microseconds(rng_.uniformInt(5, 50));
        }
        res.completeTime = now + lat;
        return res;
    }

    uint64_t capacitySectors() const override { return 1 << 20; }
    void purge(sim::SimTime) override {}
    std::string name() const override { return "random-faulty"; }

  private:
    sim::Rng rng_;
};

TEST(ResilientDeviceProperty, BackoffDeterministicPerConfigAndCapped)
{
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        sim::Rng rng(seed);
        ResilienceConfig cfg;
        cfg.backoffBase = microseconds(rng.uniformInt(1, 1000));
        cfg.backoffCap =
            cfg.backoffBase + microseconds(rng.uniformInt(0, 50000));
        ScriptedDevice inner({});
        ResilientDevice a(inner, cfg);
        ResilientDevice b(inner, cfg);
        sim::SimDuration prev = 0;
        sim::SimDuration expect = cfg.backoffBase;
        for (uint32_t k = 1; k <= 40; ++k) {
            const sim::SimDuration d = a.backoffFor(k);
            EXPECT_EQ(d, b.backoffFor(k)) << "seed " << seed;
            EXPECT_LE(d, cfg.backoffCap) << "seed " << seed;
            EXPECT_GE(d, prev) << "seed " << seed; // Monotone.
            EXPECT_EQ(d, std::min(expect, cfg.backoffCap))
                << "seed " << seed << " retry " << k;
            prev = d;
            if (expect < cfg.backoffCap)
                expect *= 2; // Saturate: the exact doubling ladder.
        }
    }
}

TEST(ResilientDeviceProperty, DeadlineBudgetsAlwaysDominate)
{
    // Against arbitrary fault streams and arbitrary budgets, a bounded
    // exchange never consumes sim time past its deadline — and the
    // whole exchange stream is a pure function of the seed.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        RandomFaultyDevice innerA(seed);
        RandomFaultyDevice innerB(seed);
        ResilientDevice a(innerA);
        ResilientDevice b(innerB);
        sim::Rng ctl(seed ^ 0x9e3779b97f4a7c15ULL);
        sim::SimTime now;
        for (int i = 0; i < 200; ++i) {
            const sim::SimDuration budget =
                microseconds(ctl.uniformInt(0, 800000));
            const sim::SimTime deadline =
                budget == 0 ? sim::kTimeZero : now + budget;
            const IoResult ra = a.submitBounded(makeRead4k(0), now, deadline);
            const IoResult rb = b.submitBounded(makeRead4k(0), now, deadline);
            EXPECT_EQ(ra.status, rb.status) << "seed " << seed;
            EXPECT_EQ(ra.completeTime, rb.completeTime) << "seed " << seed;
            EXPECT_EQ(ra.attempts, rb.attempts) << "seed " << seed;
            EXPECT_GE(ra.completeTime, now);
            if (deadline != sim::kTimeZero) {
                EXPECT_LE(ra.completeTime, deadline)
                    << "seed " << seed << " req " << i << " status "
                    << toString(ra.status);
            } else {
                EXPECT_NE(ra.status, IoStatus::Expired);
            }
            now = ra.completeTime + microseconds(10);
        }
        EXPECT_EQ(a.counters().expired, b.counters().expired);
        EXPECT_EQ(a.counters().attemptsIssued, b.counters().attemptsIssued);
    }
}

TEST(ResilientDeviceProperty, UnboundedSubmitMatchesZeroDeadline)
{
    RandomFaultyDevice innerA(42);
    RandomFaultyDevice innerB(42);
    ResilientDevice a(innerA);
    ResilientDevice b(innerB);
    sim::SimTime now;
    for (int i = 0; i < 100; ++i) {
        const IoResult ra = a.submit(makeRead4k(0), now);
        const IoResult rb = b.submitBounded(makeRead4k(0), now, sim::kTimeZero);
        EXPECT_EQ(ra.status, rb.status);
        EXPECT_EQ(ra.completeTime, rb.completeTime);
        EXPECT_EQ(ra.attempts, rb.attempts);
        now = ra.completeTime + microseconds(10);
    }
}

TEST(ResilientDeviceTest, ZeroMaxRetriesFailsFast)
{
    ResilienceConfig cfg;
    cfg.maxRetries = 0;
    ScriptedDevice inner({{IoStatus::MediaError, microseconds(100)},
                          {IoStatus::Ok, microseconds(100)}});
    ResilientDevice dev(inner, cfg);
    const IoResult res = dev.submit(makeRead4k(0), sim::kTimeZero);
    EXPECT_EQ(res.status, IoStatus::MediaError);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_EQ(dev.counters().exhausted, 1u);
}

} // namespace
} // namespace ssdcheck::blockdev
