/** @file Unit tests for core/calibrator.h. */
#include <gtest/gtest.h>

#include "core/calibrator.h"

namespace ssdcheck::core {
namespace {

using sim::microseconds;
using sim::milliseconds;

TEST(CalibratorTest, StartsAtConfiguredEstimates)
{
    CalibratorConfig cfg;
    cfg.initialFlushOverhead = milliseconds(5);
    Calibrator c(cfg);
    EXPECT_EQ(c.flushOverhead(), milliseconds(5));
    EXPECT_EQ(c.readService(), cfg.initialReadService);
    EXPECT_TRUE(c.predictionEnabled());
}

TEST(CalibratorTest, SeedFlushOverheadOverridesInitial)
{
    Calibrator c;
    c.seedFlushOverhead(milliseconds(7));
    EXPECT_EQ(c.flushOverhead(), milliseconds(7));
    c.seedFlushOverhead(0); // zero ignored
    EXPECT_EQ(c.flushOverhead(), milliseconds(7));
}

TEST(CalibratorTest, EwmaConvergesTowardObservations)
{
    CalibratorConfig cfg;
    cfg.ewmaAlpha = 0.2;
    cfg.initialFlushOverhead = milliseconds(1);
    Calibrator c(cfg);
    for (int i = 0; i < 100; ++i)
        c.observeFlushEvent(milliseconds(4));
    EXPECT_NEAR(static_cast<double>(c.flushOverhead()),
                static_cast<double>(milliseconds(4)), 1e5);
}

TEST(CalibratorTest, SeparateEstimatorsDoNotInterfere)
{
    Calibrator c;
    const auto read0 = c.readService();
    for (int i = 0; i < 50; ++i)
        c.observeGcEvent(milliseconds(50));
    EXPECT_EQ(c.readService(), read0);
    EXPECT_GT(c.gcOverhead(), milliseconds(40));
}

TEST(CalibratorTest, NlObservationsUpdateServiceTimes)
{
    Calibrator c;
    for (int i = 0; i < 200; ++i) {
        c.observeNlRead(microseconds(120));
        c.observeNlWrite(microseconds(45));
    }
    EXPECT_NEAR(static_cast<double>(c.readService()), 120000.0, 2000.0);
    EXPECT_NEAR(static_cast<double>(c.writeService()), 45000.0, 2000.0);
}

TEST(CalibratorTest, GcResetSignaledOnLowAccuracy)
{
    CalibratorConfig cfg;
    cfg.gcResetAccuracy = 0.25;
    cfg.minHlEvents = 10;
    Calibrator c(cfg);
    // Too few HL events: no action.
    EXPECT_FALSE(c.onAccuracySample(0.0, 5));
    // Enough events, low accuracy: reset requested.
    EXPECT_TRUE(c.onAccuracySample(0.1, 50));
    // Healthy accuracy: no reset.
    EXPECT_FALSE(c.onAccuracySample(0.8, 50));
}

TEST(CalibratorTest, DisablesAfterSustainedFailure)
{
    CalibratorConfig cfg;
    cfg.disableAccuracy = 0.05;
    cfg.disableAfter = 100;
    cfg.minHlEvents = 1;
    Calibrator c(cfg);
    for (int i = 0; i < 102; ++i)
        c.onAccuracySample(0.0, 10);
    EXPECT_FALSE(c.predictionEnabled());
}

TEST(CalibratorTest, RecoveryResetsDisableStreak)
{
    CalibratorConfig cfg;
    cfg.disableAccuracy = 0.05;
    cfg.disableAfter = 100;
    cfg.minHlEvents = 1;
    Calibrator c(cfg);
    for (int i = 0; i < 80; ++i)
        c.onAccuracySample(0.0, 10);
    EXPECT_EQ(c.lowAccuracyStreak(), 80u);
    c.onAccuracySample(0.9, 10); // one good sample resets the streak
    EXPECT_EQ(c.lowAccuracyStreak(), 0u);
    for (int i = 0; i < 80; ++i)
        c.onAccuracySample(0.0, 10);
    EXPECT_TRUE(c.predictionEnabled());
}

TEST(CalibratorTest, HealthCountersObservable)
{
    CalibratorConfig cfg;
    cfg.gcResetAccuracy = 0.25;
    cfg.minHlEvents = 1;
    Calibrator c(cfg);
    EXPECT_EQ(c.observations(), 0u);
    EXPECT_EQ(c.historyResets(), 0u);
    c.onAccuracySample(0.1, 10); // below gcResetAccuracy: reset
    c.onAccuracySample(0.9, 10); // healthy
    c.onAccuracySample(0.2, 10); // reset again
    EXPECT_EQ(c.observations(), 3u);
    EXPECT_EQ(c.historyResets(), 2u);
}

TEST(CalibratorTest, DisabledStateIsSticky)
{
    CalibratorConfig cfg;
    cfg.disableAccuracy = 0.05;
    cfg.disableAfter = 10;
    cfg.minHlEvents = 1;
    Calibrator c(cfg);
    for (int i = 0; i < 12; ++i)
        c.onAccuracySample(0.0, 10);
    EXPECT_FALSE(c.predictionEnabled());
    // Later healthy samples cannot re-enable: the paper's "harmlessly
    // turned off" is a terminal state for the run.
    for (int i = 0; i < 100; ++i)
        c.onAccuracySample(1.0, 10);
    EXPECT_FALSE(c.predictionEnabled());
}

} // namespace
} // namespace ssdcheck::core
