/**
 * @file
 * Fig. 5 — GC-volume identification.
 *
 * (a) GC-interval CDF of the Fixed pattern vs Flip_x patterns on
 *     SSD E: only the volume bits (17, 18) change the distribution.
 * (b) Chi-squared p-value per flipped bit on SSD A, D and E:
 *     near-zero only at the true GC-volume bits.
 */
#include "bench_common.h"

#include <algorithm>

using namespace ssdcheck;

namespace {

std::string
cdfRow(std::vector<uint32_t> v, double q)
{
    if (v.empty())
        return "-";
    std::sort(v.begin(), v.end());
    const size_t idx = std::min(v.size() - 1,
                                static_cast<size_t>(q * (v.size() - 1)));
    return std::to_string(v[idx]);
}

} // namespace

int
main()
{
    bench::banner("Fig. 5", "GC-volume diagnosis: Fixed vs Flip_x "
                            "interval distributions + chi-squared scan");

    // (a): the interval distribution on SSD E.
    {
        ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::E));
        core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
        runner.precondition();
        const core::GcVolumeScan scan = runner.scanGcVolumes();
        std::cout << "(a) GC-interval quantiles on SSD E "
                     "(writes between GC events)\n";
        stats::TablePrinter t;
        t.header({"pattern", "q10", "q25", "q50", "q75", "q90"});
        auto addRow = [&](const std::string &name,
                          const std::vector<uint32_t> &v) {
            t.row({name, cdfRow(v, 0.10), cdfRow(v, 0.25), cdfRow(v, 0.50),
                   cdfRow(v, 0.75), cdfRow(v, 0.90)});
        };
        addRow("Fixed", scan.fixedIntervals);
        for (const uint32_t bit : {12u, 16u, 17u, 18u}) {
            const auto it = scan.flipIntervals.find(bit);
            if (it != scan.flipIntervals.end())
                addRow("Flip_" + std::to_string(bit), it->second);
        }
        t.print(std::cout);
        std::cout << "paper: only Flip_17 and Flip_18 deviate from "
                     "Fixed on SSD E.\n\n";
    }

    // (b): p-value per bit on A, D, E.
    std::cout << "(b) chi-squared p-value per flipped bit\n";
    stats::TablePrinter t;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header{"bit"};
    bool first = true;
    for (const auto m :
         {ssd::SsdModel::A, ssd::SsdModel::D, ssd::SsdModel::E}) {
        ssd::SsdDevice dev(ssd::makePreset(m));
        core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
        runner.precondition();
        const core::GcVolumeScan scan = runner.scanGcVolumes();
        header.push_back(dev.name());
        for (size_t i = 0; i < scan.perBitPValue.size(); ++i) {
            if (first)
                rows.push_back(
                    {std::to_string(scan.perBitPValue[i].first)});
            rows[i].push_back(
                stats::TablePrinter::num(scan.perBitPValue[i].second, 3));
        }
        first = false;
        std::cout << dev.name() << " detected GC-volume bits:";
        if (scan.gcVolumeBits.empty())
            std::cout << " none (single GC volume)";
        for (const uint32_t b : scan.gcVolumeBits)
            std::cout << " " << b;
        std::cout << "\n";
    }
    std::cout << "\n";
    stats::TablePrinter table;
    table.header({header[0], header[1], header[2], header[3]});
    for (auto &r : rows)
        table.row(r);
    table.print(std::cout);
    std::cout << "paper: SSD A high p everywhere (single GC volume); "
                 "SSD D p~0 at bit 17; SSD E p~0 at bits 17 and 18.\n";
    return 0;
}
