/**
 * @file
 * Hot-path microbenchmark: write-buffer add/lookup/drain cost vs
 * buffer capacity.
 *
 * The buffer's newest_ map is reserved at construction with a low
 * load factor, so adds and lookups should stay flat as the capacity
 * grows — rehash storms in the middle of a fill would show up here as
 * super-linear ns/add.
 */
#include "bench_common.h"

#include <chrono>

#include "sim/rng.h"
#include "ssd/write_buffer.h"

using namespace ssdcheck;

namespace {

struct CapResult
{
    uint32_t capacity = 0;
    double nsPerAdd = 0;
    double nsPerHit = 0;
    double nsPerMiss = 0;
    uint64_t ops = 0;
};

CapResult
runCap(uint32_t capacity)
{
    const uint64_t span = static_cast<uint64_t>(capacity) * 4;
    const uint64_t rounds = 2000000 / capacity + 1;
    sim::Rng rng(7);

    CapResult r;
    r.capacity = capacity;

    std::chrono::nanoseconds addTime{0}, hitTime{0}, missTime{0};
    uint64_t adds = 0, hits = 0, misses = 0;
    uint64_t sink = 0;
    for (uint64_t round = 0; round < rounds; ++round) {
        ssd::WriteBuffer wb(capacity);
        // Fill to capacity (the add path, including duplicate lpns).
        const auto a0 = std::chrono::steady_clock::now();
        for (uint32_t i = 0; i < capacity; ++i)
            wb.add(core::Lpn{rng.nextBelow(span)}, i);
        addTime += std::chrono::steady_clock::now() - a0;
        adds += capacity;

        // Lookups that mostly hit (lpns just written)...
        uint64_t payload = 0;
        const auto h0 = std::chrono::steady_clock::now();
        for (uint32_t i = 0; i < capacity; ++i) {
            if (wb.lookup(core::Lpn{rng.nextBelow(span)}, &payload))
                sink += payload;
        }
        hitTime += std::chrono::steady_clock::now() - h0;
        hits += capacity;

        // ...and lookups guaranteed to miss (lpns beyond the span).
        const auto m0 = std::chrono::steady_clock::now();
        for (uint32_t i = 0; i < capacity; ++i) {
            if (wb.lookup(core::Lpn{span + rng.nextBelow(span)}, &payload))
                sink += payload;
        }
        missTime += std::chrono::steady_clock::now() - m0;
        misses += capacity;

        sink += wb.drain().size();
    }
    if (sink == ~0ULL) // defeat dead-code elimination of the loops
        std::fputs("", stderr);

    r.ops = adds + hits + misses;
    r.nsPerAdd = static_cast<double>(addTime.count()) / adds;
    r.nsPerHit = static_cast<double>(hitTime.count()) / hits;
    r.nsPerMiss = static_cast<double>(missTime.count()) / misses;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("hotpath/buffer", "Write-buffer add/lookup cost vs "
                                    "capacity (flat = no rehash churn)");

    const std::vector<uint32_t> caps{64, 256, 1024, 4096};
    std::vector<CapResult> results(caps.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < caps.size(); ++i)
        tasks.emplace_back("cap" + std::to_string(caps[i]), [&, i]() {
            results[i] = runCap(caps[i]);
            return results[i].ops;
        });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"capacity", "ops", "ns/add", "ns/hit", "ns/miss"});
    for (const auto &r : results)
        t.row({std::to_string(r.capacity), std::to_string(r.ops),
               stats::TablePrinter::num(r.nsPerAdd, 1),
               stats::TablePrinter::num(r.nsPerHit, 1),
               stats::TablePrinter::num(r.nsPerMiss, 1)});
    t.print(std::cout);
    std::cout << "\nper-op cost should stay flat across capacities: the "
                 "newest_ map is pre-reserved at construction.\n";
    bench::reportBatch("hotpath_buffer", timing);
    return 0;
}
