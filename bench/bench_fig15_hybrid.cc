/**
 * @file
 * Fig. 15 — Hybrid PAS vs the always-NVM baseline.
 *
 * (a) Throughput timeline of a write-intensive benchmark on SSD C:
 *     the baseline rides the NVM until the pool exhausts, then
 *     collapses onto the irregular SSD; Hybrid PAS is consistent.
 * (b) Write-latency tail of Web on SSD C.
 * (c) NVM write pressure for SSD A-C (paper: reduced by 16.7%, 27.8%,
 *     28.7%).
 *
 * See EXPERIMENTS.md for the closed-loop conservation caveat on the
 * steady-state throughput comparison.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "nvm/nvm_device.h"
#include "usecases/hybrid.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"
#include "workload/synthetic.h"

using namespace ssdcheck;
using usecases::HybridConfig;
using usecases::HybridMode;
using usecases::HybridTier;

namespace {

struct TierRun
{
    usecases::StreamResult stream;
    uint64_t nvmPressure = 0;
    uint64_t backpressure = 0;
};

TierRun
runTier(ssd::SsdModel model, HybridMode mode, const workload::Trace &trace,
        sim::SimDuration thinktime,
        sim::SimDuration drainPeriod = sim::microseconds(800),
        uint64_t nvmPages = 4096)
{
    ssd::SsdDevice ssd(ssd::makePreset(model));
    core::DiagnosisRunner runner(ssd, core::DiagnosisConfig{});
    const auto fs = runner.extractFeatures();
    runner.precondition();
    core::SsdCheck check(fs);
    nvm::NvmConfig ncfg;
    ncfg.capacityPages = nvmPages;
    nvm::NvmDevice nvm(ncfg);
    HybridConfig hcfg;
    hcfg.bufferWeight = 0.05; // rescaled so drain keeps slots free for HL writes
    hcfg.drainPeriod = drainPeriod;
    hcfg.drainBatchPages = 1;
    HybridTier tier(ssd, nvm,
                    mode == HybridMode::HybridPas ? &check : nullptr, mode,
                    hcfg);
    TierRun out;
    out.stream =
        usecases::runClosedLoop(tier, trace, 1, thinktime, runner.now());
    out.nvmPressure = tier.nvmWritePages();
    out.backpressure = tier.backpressureWrites();
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 15", "Hybrid PAS vs always-NVM baseline");

    // (a) throughput timeline on SSD C.
    {
        const auto trace =
            workload::buildRandomWriteTrace(90000, 128 * 1024, 7);
        const auto base =
            runTier(ssd::SsdModel::C, HybridMode::Baseline, trace,
                    sim::microseconds(100), sim::microseconds(800),
                    16384);
        const auto hyb =
            runTier(ssd::SsdModel::C, HybridMode::HybridPas, trace,
                    sim::microseconds(100), sim::microseconds(800),
                    16384);
        std::cout << "(a) write throughput over time on SSD C "
                     "(MB/s per 500ms bucket)\n";
        stats::TablePrinter t;
        t.header({"t(s)", "baseline", "hybrid-pas"});
        const size_t windows =
            std::min(base.stream.timeline.numWindows(),
                     hyb.stream.timeline.numWindows());
        for (size_t w = 0; w + 5 <= windows && w < 100; w += 5) {
            double b = 0, h = 0;
            for (size_t i = w; i < w + 5; ++i) {
                b += base.stream.timeline.mbps(i);
                h += hyb.stream.timeline.mbps(i);
            }
            t.row({stats::TablePrinter::num(w * 0.1, 1),
                   stats::TablePrinter::num(b / 5, 1),
                   stats::TablePrinter::num(h / 5, 1)});
        }
        t.print(std::cout);
        std::cout << "baseline backpressure events: " << base.backpressure
                  << ", hybrid: " << hyb.backpressure << "\n"
                  << "paper: baseline starts high, collapses when the "
                     "NVM runs out (GC exposure); Hybrid PAS is "
                     "consistent throughout.\n\n";
    }

    // (b) latency tail of Web on SSD C.
    {
        // A pure random-write stream rather than Web: our synthetic
        // Web is sequential enough that GC degenerates to cheap
        // erase-only reclaims, and at QD1 any interleaved read
        // absorbs the stall before a write can meet it (see
        // EXPERIMENTS.md).
        const auto trace =
            workload::buildRandomWriteTrace(70000, 128 * 1024, 8);
        const auto base =
            runTier(ssd::SsdModel::C, HybridMode::Baseline, trace,
                    sim::microseconds(100));
        const auto hyb =
            runTier(ssd::SsdModel::C, HybridMode::HybridPas, trace,
                    sim::microseconds(100));
        std::cout << "(b) write-intensive write-latency tail on SSD C\n";
        stats::TablePrinter t;
        t.header({"percentile", "baseline", "hybrid-pas"});
        for (const double p : {99.0, 99.5, 99.7, 99.9}) {
            t.row({stats::TablePrinter::num(p, 1),
                   sim::formatDuration(
                       base.stream.writeLatency.percentile(p)),
                   sim::formatDuration(
                       hyb.stream.writeLatency.percentile(p))});
        }
        t.print(std::cout);
        const double ratio =
            static_cast<double>(base.stream.writeLatency.percentile(99.7)) /
            std::max<sim::SimDuration>(
                1, hyb.stream.writeLatency.percentile(99.7));
        std::cout << "p99.7 baseline/hybrid = "
                  << stats::TablePrinter::num(ratio, 2)
                  << "x   (paper: 1.46x)\n"
                  << "NOTE: this panel does not reproduce (see "
                     "EXPERIMENTS.md): at QD1 both tiers eventually pay "
                     "the same GC windows (page conservation), and our "
                     "back-type ack model exposes no device-side write "
                     "queue for the NVM to hide.\n\n";
    }

    // (c) NVM pressure for SSD A-C.
    {
        std::cout << "(c) NVM write pressure (pages into the NVM, "
                     "hybrid relative to baseline)\n";
        stats::TablePrinter t;
        t.header({"SSD", "baseline", "hybrid-pas", "reduction", "paper"});
        const char *paper[] = {"16.7%", "27.8%", "28.7%"};
        int i = 0;
        for (const auto m :
             {ssd::SsdModel::A, ssd::SsdModel::B, ssd::SsdModel::C}) {
            const auto trace = workload::buildSniaTrace(
                workload::SniaWorkload::Homes, 100 * 1024, 0.02,
                20 + i);
            const auto base = runTier(m, HybridMode::Baseline, trace,
                                      sim::microseconds(120));
            const auto hyb = runTier(m, HybridMode::HybridPas, trace,
                                     sim::microseconds(120));
            const double red =
                1.0 - static_cast<double>(hyb.nvmPressure) /
                          static_cast<double>(base.nvmPressure);
            t.row({ssd::toString(m), std::to_string(base.nvmPressure),
                   std::to_string(hyb.nvmPressure),
                   stats::TablePrinter::pct(red, 1), paper[i]});
            ++i;
        }
        t.print(std::cout);
        std::cout << "paper: pressure reduced 16.7/27.8/28.7% on A-C.\n";
    }
    return 0;
}
