/**
 * @file
 * Table III — Latency distribution of the Web workload on SSD A:
 * fraction of reads/writes below 250us, 3500us and 10ms.
 *
 * Paper: reads 99.12% / 0.87% / 0.01%, writes 98.43% / 1.53% / 0.04%.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "usecases/runner.h"
#include "usecases/scheduler.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

int
main()
{
    bench::banner("Table III", "Latency distribution of Web on SSD A");

    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    core::DiagnosisRunner prep(dev, core::DiagnosisConfig{});
    // Sequential fill, not random precondition: our scaled-down
    // capacity makes steady-state GC ~20x more frequent per written
    // byte than on the paper's 100x larger drives, which would
    // distort the class shares this table is about.
    prep.sequentialFill();
    // The real trace is arrival-timed, not back-to-back: pace the
    // replay so device busy windows are occasional, as in deployment.
    auto trace = workload::buildSniaTrace(
        workload::SniaWorkload::Web, dev.capacityPages(), 0.02);
    sim::Rng rng(12);
    trace.assignPoissonArrivals(600.0, rng);
    usecases::NoopScheduler fifo;
    const auto sched =
        usecases::runScheduled(dev, fifo, trace, prep.now());
    const auto &res = sched.stream;

    auto bucket = [](const stats::LatencyRecorder &r) {
        const double b1 = r.fractionBelow(sim::microseconds(250));
        const double b2 = r.fractionBelow(sim::microseconds(3500)) - b1;
        const double b3 = r.fractionBelow(sim::milliseconds(10)) - b1 - b2;
        return std::array<double, 3>{b1, b2, b3};
    };
    const auto rd = bucket(res.readLatency);
    const auto wr = bucket(res.writeLatency);

    stats::TablePrinter t;
    t.header({"", "<250us", "250us-3.5ms", "3.5-10ms", "paper <250us"});
    t.row({"Read", stats::TablePrinter::pct(rd[0]),
           stats::TablePrinter::pct(rd[1]), stats::TablePrinter::pct(rd[2]),
           "99.12%"});
    t.row({"Write", stats::TablePrinter::pct(wr[0]),
           stats::TablePrinter::pct(wr[1]), stats::TablePrinter::pct(wr[2]),
           "98.43%"});
    t.print(std::cout);
    std::cout << "\nThe 250us threshold separates NL from HL requests "
                 "(paper §V-B); the overwhelming majority of requests "
                 "are NL, as in the paper.\n";
    return 0;
}
