/**
 * @file
 * Hot-path microbenchmark: GC victim selection cost vs device size.
 *
 * Builds FTLs from 256 to 16384 physical blocks, drives each to a
 * fragmented steady state, then times pickVictimGreedy() inside a
 * realistic overwrite+GC loop. With the incremental valid-count
 * buckets the per-pick cost should stay roughly flat as the block
 * count grows 64x — the old implementation scanned every block per
 * pick, so its cost grew linearly.
 */
#include "bench_common.h"

#include <chrono>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/page_mapper.h"

using namespace ssdcheck;

namespace {

struct SizeResult
{
    uint64_t blocks = 0;
    uint64_t picks = 0;
    double nsPerPick = 0;
    double writesPerSec = 0;
};

SizeResult
runSize(uint32_t blocksPerPlane)
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 1;
    g.blocksPerPlane = blocksPerPlane;
    g.pagesPerBlock = 64;

    nand::NandArray arr(g, nand::NandTiming{});
    const uint64_t userPages = g.totalPages() * 8 / 10; // 80% exported
    ssd::PageMapper m(arr, userPages);

    sim::Rng rng(42);
    auto gcIfNeeded = [&]() {
        while (m.freeBlocks() < 4) {
            const nand::Pbn v = m.pickVictimGreedy();
            if (v == ssd::PageMapper::kNoVictim)
                break;
            m.collectBlock(v);
        }
    };

    // Fill once, then fragment with random overwrites.
    for (uint64_t lpn = 0; lpn < userPages; ++lpn) {
        m.writePage(core::Lpn{lpn}, lpn);
        gcIfNeeded();
    }
    for (uint64_t i = 0; i < userPages; ++i) {
        m.writePage(core::Lpn{rng.nextBelow(userPages)}, i);
        gcIfNeeded();
    }

    // Timed steady state: every iteration overwrites one page (bucket
    // churn) and picks a victim; GC runs exactly as in the device.
    const uint64_t iters = 200000;
    std::chrono::nanoseconds pickTime{0};
    uint64_t picks = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
        m.writePage(core::Lpn{rng.nextBelow(userPages)}, i);
        const auto p0 = std::chrono::steady_clock::now();
        const nand::Pbn v = m.pickVictimGreedy();
        pickTime += std::chrono::steady_clock::now() - p0;
        ++picks;
        if (m.freeBlocks() < 4 && v != ssd::PageMapper::kNoVictim)
            m.collectBlock(v);
        gcIfNeeded();
    }
    const double loopSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    SizeResult r;
    r.blocks = g.totalBlocks();
    r.picks = picks;
    r.nsPerPick =
        static_cast<double>(pickTime.count()) / static_cast<double>(picks);
    r.writesPerSec = loopSec > 0 ? iters / loopSec : 0;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("hotpath/gc", "GC victim selection cost vs physical "
                                "block count (flat = O(1)-like)");

    const std::vector<uint32_t> sizes{256, 1024, 4096, 16384};
    std::vector<SizeResult> results(sizes.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < sizes.size(); ++i)
        tasks.emplace_back("blocks" + std::to_string(sizes[i]), [&, i]() {
            results[i] = runSize(sizes[i]);
            return results[i].picks;
        });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"blocks", "picks", "ns/pick", "writes/s", "vs smallest"});
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.row({std::to_string(r.blocks), std::to_string(r.picks),
               stats::TablePrinter::num(r.nsPerPick, 1),
               stats::TablePrinter::num(r.writesPerSec, 0),
               stats::TablePrinter::num(
                   r.nsPerPick / results[0].nsPerPick, 2) +
                   "x"});
    }
    t.print(std::cout);
    std::cout << "\nns/pick should stay near 1x across the 64x block "
                 "range; a linear scan would grow ~64x.\n";
    bench::reportBatch("hotpath_gc", timing);
    return 0;
}
