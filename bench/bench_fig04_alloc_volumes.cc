/**
 * @file
 * Fig. 4 — Allocation-volume identification: random-write throughput
 * with one sector-LBA bit pinned, swept over all bit indices.
 *
 * Paper: SSD A's throughput is flat across all bits (single volume);
 * SSD D's throughput halves at bit 17 (two volumes selected by it).
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

using namespace ssdcheck;

namespace {

void
scanOne(ssd::SsdModel model)
{
    ssd::SsdDevice dev(ssd::makePreset(model));
    core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
    const core::AllocVolumeScan scan = runner.scanAllocationVolumes();

    std::cout << dev.name() << "  (baseline "
              << stats::TablePrinter::num(scan.baselineMbps, 1)
              << " MB/s)\n";
    stats::TablePrinter t;
    t.header({"bit", "MB/s", "vs baseline", "volume bit?"});
    for (const auto &[bit, mbps] : scan.perBitMbps) {
        const bool hit =
            std::find(scan.volumeBits.begin(), scan.volumeBits.end(),
                      bit) != scan.volumeBits.end();
        t.row({std::to_string(bit), stats::TablePrinter::num(mbps, 1),
               stats::TablePrinter::num(mbps / scan.baselineMbps, 2),
               hit ? "  <== volume bit" : ""});
    }
    t.print(std::cout);
    std::cout << "detected allocation-volume bits:";
    if (scan.volumeBits.empty())
        std::cout << " none (single volume)";
    for (const uint32_t b : scan.volumeBits)
        std::cout << " " << b;
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    bench::banner("Fig. 4", "Write throughput per pinned LBA bit "
                            "(allocation-volume diagnosis)");
    scanOne(ssd::SsdModel::A);
    scanOne(ssd::SsdModel::D);
    std::cout << "paper: SSD A constant across all bits; SSD D halves "
                 "at bit 17 (two allocation volumes).\n";
    return 0;
}
