/**
 * @file
 * Fig. 3 — Performance impact of WB and GC on the prototyped SSD.
 *
 * Five variants of the instrumented prototype run a 4KB random-write
 * workload:
 *   (a) latency distribution per variant (unsaturated run, so each
 *       request's latency reflects its own cause; paper: SSD_WB
 *       8.24x, SSD_GC 46.67x, SSD_All 47.12x over Optimal at p99.5);
 *   (b) throughput over time per variant (saturated QD16 run);
 *   (c) frequency of operation classes (paper: Others 93.37%,
 *       WB 6.39%, GC 0.24%);
 *   (d) latency-overhead breakdown, attributed to each request's
 *       ground-truth cause (paper: WB+GC = 92.3% of HL overhead,
 *       WB 43.4% / GC 48.9%).
 */
#include "bench_common.h"

#include <algorithm>
#include <queue>

#include "stats/latency_recorder.h"
#include "stats/timeline.h"
#include "workload/synthetic.h"

using namespace ssdcheck;

namespace {

constexpr int kClasses = 3; // Others, WB, GC
const char *kClassName[] = {"Others", "WB", "GC"};

struct VariantResult
{
    std::string name;
    stats::LatencyRecorder latency;        ///< Unsaturated QD1 run.
    stats::Timeline timeline{sim::milliseconds(100)}; ///< QD16 run.
    uint64_t count[kClasses] = {};
    double sumLatUs[kClasses] = {};
    uint64_t hlCount[kClasses] = {};
    double hlSumLatUs[kClasses] = {};
};

int
classOf(const ssd::IoDetail &d)
{
    switch (d.cause()) {
      case ssd::IoDetail::Cause::GarbageCollection:
        return 2;
      case ssd::IoDetail::Cause::WriteBuffer:
        return 1;
      case ssd::IoDetail::Cause::Others:
        break;
    }
    return 0;
}

VariantResult
runVariant(ssd::PrototypeVariant v)
{
    VariantResult out;
    out.name = toString(v);
    ssd::SsdDevice dev(ssd::makePrototype(v));
    dev.precondition();
    // Steady-state churn before measuring.
    const auto warm =
        workload::buildRandomWriteTrace(40000, dev.capacityPages(), 9);
    sim::SimTime t;
    for (const auto &rec : warm.records())
        t = dev.submit(rec.req, t).completeTime;

    // Latency run: QD1 with thinktime so each latency reflects its
    // own request's cause, not upstream queueing.
    const auto latTrace =
        workload::buildRandomWriteTrace(120000, dev.capacityPages(), 10);
    for (const auto &rec : latTrace.records()) {
        ssd::IoDetail d;
        const auto res = dev.submitDetailed(rec.req, t, &d);
        const auto lat = res.latency();
        out.latency.add(lat);
        const int cls = classOf(d);
        ++out.count[cls];
        out.sumLatUs[cls] += sim::toMicros(lat);
        if (lat > sim::microseconds(250)) {
            ++out.hlCount[cls];
            out.hlSumLatUs[cls] += sim::toMicros(lat);
        }
        t = res.completeTime + sim::microseconds(400);
    }

    // Throughput run: saturated QD16.
    const auto tputTrace =
        workload::buildRandomWriteTrace(60000, dev.capacityPages(), 11);
    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;
    const sim::SimTime start = t;
    for (const auto &rec : tputTrace.records()) {
        if (inflight.size() >= 16) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        const auto res = dev.submit(rec.req, t);
        inflight.push(res.completeTime);
        out.timeline.add(res.completeTime - start, rec.req.bytes());
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 3", "WB/GC impact on the prototyped SSD "
                            "(5 variants, 4KB random writes)");

    std::vector<VariantResult> results;
    for (const auto v : ssd::allPrototypeVariants())
        results.push_back(runVariant(v));
    const double optTail =
        sim::toMicros(results[0].latency.percentile(99.5));

    std::cout << "(a) latency distribution (us)\n";
    stats::TablePrinter a;
    a.header({"variant", "p50", "p99", "p99.5", "p99.9",
              "p99.5 vs Optimal"});
    for (const auto &r : results) {
        const double tail = sim::toMicros(r.latency.percentile(99.5));
        a.row({r.name,
               stats::TablePrinter::num(
                   sim::toMicros(r.latency.percentile(50)), 0),
               stats::TablePrinter::num(
                   sim::toMicros(r.latency.percentile(99)), 0),
               stats::TablePrinter::num(tail, 0),
               stats::TablePrinter::num(
                   sim::toMicros(r.latency.percentile(99.9)), 0),
               stats::TablePrinter::num(tail / optTail, 2) + "x"});
    }
    a.print(std::cout);
    std::cout << "paper: SSD_WB 8.24x, SSD_GC 46.67x, SSD_All 47.12x "
                 "over SSD_Optimal at p99.5.\n\n";

    std::cout << "(b) saturated QD16 throughput: level and "
                 "fluctuation across 100ms windows\n";
    stats::TablePrinter b;
    b.header({"variant", "mean MB/s", "vs Others", "CV", "min win",
              "max win"});
    const double othersMean = results[1].timeline.meanMbps();
    for (const auto &r : results) {
        double lo = 1e18, hi = 0;
        for (size_t w = 0; w < r.timeline.numWindows(); ++w) {
            lo = std::min(lo, r.timeline.mbps(w));
            hi = std::max(hi, r.timeline.mbps(w));
        }
        b.row({r.name, stats::TablePrinter::num(r.timeline.meanMbps(), 0),
               stats::TablePrinter::pct(r.timeline.meanMbps() / othersMean,
                                        0),
               stats::TablePrinter::num(r.timeline.mbpsCv(), 2),
               stats::TablePrinter::num(lo, 0),
               stats::TablePrinter::num(hi, 0)});
    }
    b.print(std::cout);
    std::cout << "paper: WB flush degrades throughput (to ~70%); GC adds "
                 "large fluctuation; SSD_All shows both.\n\n";

    const auto &all = results.back(); // SSD_All
    const double n = static_cast<double>(all.count[0] + all.count[1] +
                                         all.count[2]);
    std::cout << "(c) portion of each operation class (SSD_All)\n";
    stats::TablePrinter c;
    c.header({"class", "measured", "paper"});
    const char *paperPortion[] = {"93.37%", "6.39%", "0.24%"};
    for (int i = 0; i < kClasses; ++i)
        c.row({kClassName[i], stats::TablePrinter::pct(all.count[i] / n),
               paperPortion[i]});
    c.print(std::cout);

    // Overhead = latency above the Others-class median of the same
    // run, attributed per request to its ground-truth cause.
    const double baseUs = all.count[0] > 0
                              ? all.sumLatUs[0] /
                                    static_cast<double>(all.count[0])
                              : 0.0;
    double over[kClasses], hlOver[kClasses];
    double overSum = 0, hlOverSum = 0;
    for (int i = 0; i < kClasses; ++i) {
        over[i] = std::max(
            0.0, all.sumLatUs[i] -
                     static_cast<double>(all.count[i]) * baseUs);
        hlOver[i] = std::max(
            0.0, all.hlSumLatUs[i] -
                     static_cast<double>(all.hlCount[i]) * baseUs);
        overSum += over[i];
        hlOverSum += hlOver[i];
    }
    std::cout << "\n(d) latency-overhead breakdown (SSD_All)\n";
    stats::TablePrinter d;
    d.header({"class", "all requests", "HL requests", "paper (HL)"});
    const char *paperHl[] = {"7.7%", "43.4%", "48.9%"};
    for (int i = 0; i < kClasses; ++i)
        d.row({kClassName[i], stats::TablePrinter::pct(over[i] / overSum),
               stats::TablePrinter::pct(hlOver[i] / hlOverSum),
               paperHl[i]});
    d.print(std::cout);
    std::cout << "paper: WB+GC = 44.3% of all overhead and 92.3% of "
                 "HL overhead.\n";
    return 0;
}
