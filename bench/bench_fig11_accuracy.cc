/**
 * @file
 * Fig. 11 — Prediction accuracy of SSDcheck: NL and HL accuracy for
 * seven workloads on seven devices.
 *
 * Paper per-SSD averages: HL = 80.0 / 79.8 / 72.3 / 61.1 / 48.4 /
 * 72.7 / 73.7 % and NL = 99.0 / 99.0 / 99.0 / 99.7 / 99.7 / 99.5 /
 * 99.1 % for SSD A-G.
 *
 * The seven devices are fully independent, so the grid shards one
 * device per thread (`--jobs N`, default all cores); each shard
 * carries its SSDcheck calibration across the workloads exactly like
 * the original serial loop, so the table is bit-identical at any job
 * count.
 */
#include "bench_common.h"

#include "core/accuracy.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 11", "NL/HL prediction accuracy per workload "
                             "per device (traces at 3% scale)");

    const double paperHl[] = {80.0, 79.8, 72.3, 61.1, 48.4, 72.7, 73.7};
    const double paperNl[] = {99.0, 99.0, 99.0, 99.7, 99.7, 99.5, 99.1};

    const unsigned jobs = bench::parseJobs(argc, argv);
    const perf::GridResult grid =
        perf::runGrid(perf::GridSpec::fig11(0.03), jobs);

    stats::TablePrinter t;
    std::vector<std::string> header{"SSD"};
    for (const auto w : workload::allSniaWorkloads())
        header.push_back(toString(w));
    header.push_back("avg HL");
    header.push_back("paper HL");
    header.push_back("avg NL");
    header.push_back("paper NL");
    t.row(header); // header via row to keep the wide table aligned

    const size_t perDevice = workload::allSniaWorkloads().size();
    int idx = 0;
    for (const auto m : ssd::allModels()) {
        std::vector<std::string> row{"SSD " + ssd::toString(m)};
        double hlSum = 0, nlSum = 0;
        int n = 0;
        for (size_t wi = 0; wi < perDevice; ++wi) {
            const perf::GridCell &cell =
                grid.cells[static_cast<size_t>(idx) * perDevice + wi];
            const auto &acc = cell.accuracy;
            row.push_back(
                stats::TablePrinter::num(acc.hlAccuracy() * 100, 0) + "/" +
                stats::TablePrinter::num(acc.nlAccuracy() * 100, 0));
            hlSum += acc.hlAccuracy() * 100;
            nlSum += acc.nlAccuracy() * 100;
            ++n;
        }
        (void)m;
        row.push_back(stats::TablePrinter::num(hlSum / n, 1));
        row.push_back(stats::TablePrinter::num(paperHl[idx], 1));
        row.push_back(stats::TablePrinter::num(nlSum / n, 1));
        row.push_back(stats::TablePrinter::num(paperNl[idx], 1));
        t.row(row);
        ++idx;
    }
    t.print(std::cout);
    std::cout << "\ncells are HL/NL accuracy (%); one SSDcheck instance "
                 "per device carries its calibration across workloads.\n"
              << "paper shape: A/B highest among back-type devices, D/E "
                 "dragged down by secondary (SLC-cache) features.\n";
    bench::reportBatch("fig11_accuracy_grid", grid.timing);
    return 0;
}
