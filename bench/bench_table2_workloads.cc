/**
 * @file
 * Table II — Characteristics of the (synthetic equivalents of the)
 * real workloads: request count, write fraction, randomness.
 */
#include "bench_common.h"

#include "workload/snia_synth.h"

using namespace ssdcheck;

int
main()
{
    bench::banner("Table II", "Workload characteristics: paper values "
                              "vs generated traces (at 5% scale)");

    stats::TablePrinter t;
    t.header({"trace", "#req (paper)", "writes (paper)", "random (paper)",
              "#req (gen)", "writes (gen)", "random (gen)"});
    for (const auto w : workload::allSniaWorkloads()) {
        if (w == workload::SniaWorkload::RwMixed)
            continue; // synthetic extreme, not in Table II
        const auto ps = workload::paperStats(w);
        const auto trace = workload::buildSniaTrace(w, 64 * 1024, 0.05);
        const auto s = trace.characterize();
        t.row({toString(w), std::to_string(ps.requests / 100000) + "." +
                                std::to_string(ps.requests / 10000 % 10) +
                                "M",
               stats::TablePrinter::pct(ps.writeFraction, 1),
               stats::TablePrinter::pct(ps.randomFraction, 1),
               std::to_string(s.requests),
               stats::TablePrinter::pct(s.writeFraction, 1),
               stats::TablePrinter::pct(s.randomFraction, 1)});
    }
    t.print(std::cout);
    std::cout << "\nGenerated traces reproduce Table II's write ratio "
                 "and randomness; counts are scaled by 0.05 for fast "
                 "sweeps (pass scale=1.0 for full-size traces).\n";
    return 0;
}
