/**
 * @file
 * Table II — Characteristics of the (synthetic equivalents of the)
 * real workloads: request count, write fraction, randomness.
 *
 * Trace generation is per-workload independent, so the builds shard
 * across the pool (`--jobs N`) and rows print in fixed order.
 */
#include "bench_common.h"

#include "workload/snia_synth.h"

using namespace ssdcheck;

int
main(int argc, char **argv)
{
    bench::banner("Table II", "Workload characteristics: paper values "
                              "vs generated traces (at 5% scale)");

    std::vector<workload::SniaWorkload> rows;
    for (const auto w : workload::allSniaWorkloads()) {
        if (w == workload::SniaWorkload::RwMixed)
            continue; // synthetic extreme, not in Table II
        rows.push_back(w);
    }

    std::vector<workload::TraceStats> gen(rows.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < rows.size(); ++i)
        tasks.emplace_back(toString(rows[i]), [&, i]() {
            const auto trace =
                workload::buildSniaTrace(rows[i], 64 * 1024, 0.05);
            gen[i] = trace.characterize();
            return static_cast<uint64_t>(trace.size());
        });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"trace", "#req (paper)", "writes (paper)", "random (paper)",
              "#req (gen)", "writes (gen)", "random (gen)"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto ps = workload::paperStats(rows[i]);
        const auto &s = gen[i];
        t.row({toString(rows[i]),
               std::to_string(ps.requests / 100000) + "." +
                   std::to_string(ps.requests / 10000 % 10) + "M",
               stats::TablePrinter::pct(ps.writeFraction, 1),
               stats::TablePrinter::pct(ps.randomFraction, 1),
               std::to_string(s.requests),
               stats::TablePrinter::pct(s.writeFraction, 1),
               stats::TablePrinter::pct(s.randomFraction, 1)});
    }
    t.print(std::cout);
    std::cout << "\nGenerated traces reproduce Table II's write ratio "
                 "and randomness; counts are scaled by 0.05 for fast "
                 "sweeps (pass scale=1.0 for full-size traces).\n";
    bench::reportBatch("table2_workloads", timing);
    return 0;
}
