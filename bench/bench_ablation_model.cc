/**
 * @file
 * Ablation — contribution of each model component to HL accuracy.
 *
 * The paper calls out two of these directly: "the allocation volume
 * model substantially increases SSDcheck's accuracy on SSD D and E
 * compared to extremely low accuracy of SSDcheck without the model"
 * (§V-B) and "calibration engine, however, quickly resolves the
 * discrepancy". This bench quantifies both, plus the history-based GC
 * model, by re-running the Fig. 11 evaluation with one component
 * disabled at a time.
 */
#include "bench_common.h"

#include "core/accuracy.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

struct Cell
{
    double hl;
    double nl;
};

Cell
runVariant(ssd::SsdModel model, const core::RuntimeConfig &rc)
{
    auto d = bench::diagnosePreset(model);
    core::SsdCheck check(d.features, rc);
    sim::SimTime now = d.now;
    double hl = 0, nl = 0;
    int n = 0;
    for (const auto w :
         {workload::SniaWorkload::TPCE, workload::SniaWorkload::Exch,
          workload::SniaWorkload::RwMixed}) {
        const auto trace = workload::buildSniaTrace(
            w, d.dev->capacityPages(), 0.03, 1000 + static_cast<int>(w));
        sim::SimTime end = now;
        const auto acc = core::evaluatePredictionAccuracy(*d.dev, check,
                                                          trace, now, &end);
        now = end + sim::milliseconds(100);
        hl += acc.hlAccuracy() * 100;
        nl += acc.nlAccuracy() * 100;
        ++n;
    }
    return Cell{hl / n, nl / n};
}

} // namespace

int
main()
{
    bench::banner("Ablation", "HL/NL accuracy with model components "
                              "disabled (TPCE + Exch + RW Mixed)");

    struct Variant
    {
        const char *name;
        core::RuntimeConfig rc;
    };
    std::vector<Variant> variants;
    variants.push_back({"full model", {}});
    {
        core::RuntimeConfig rc;
        rc.useVolumeModel = false;
        variants.push_back({"- volume model", rc});
    }
    {
        core::RuntimeConfig rc;
        rc.useGcModel = false;
        variants.push_back({"- gc model", rc});
    }
    {
        core::RuntimeConfig rc;
        rc.useCalibrator = false;
        variants.push_back({"- calibrator", rc});
    }

    stats::TablePrinter t;
    t.header({"variant", "SSD A (HL/NL)", "SSD D (HL/NL)",
              "SSD E (HL/NL)"});
    for (const auto &v : variants) {
        std::vector<std::string> row{v.name};
        for (const auto m :
             {ssd::SsdModel::A, ssd::SsdModel::D, ssd::SsdModel::E}) {
            const Cell c = runVariant(m, v.rc);
            row.push_back(stats::TablePrinter::num(c.hl, 1) + " / " +
                          stats::TablePrinter::num(c.nl, 1));
        }
        t.row(row);
    }
    t.print(std::cout);
    std::cout << "\npaper (§V-B): without the allocation-volume model, "
                 "accuracy on the multi-volume devices D and E is "
                 "extremely low; the calibrator is what keeps the "
                 "model in phase at runtime.\n";
    return 0;
}
