/**
 * @file
 * §V-B claim — "SSDcheck's prediction overheads are negligible (a few
 * nanoseconds)". Microbenchmarks of the hot runtime-framework paths
 * using google-benchmark.
 */
#include <benchmark/benchmark.h>

#include "core/ssdcheck.h"
#include "sim/rng.h"

using namespace ssdcheck;

namespace {

core::FeatureSet
features(size_t volumeBits)
{
    core::FeatureSet fs;
    fs.bufferBytes = 248 * 1024;
    fs.bufferType = core::BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    fs.observedFlushOverheadNs = sim::milliseconds(2);
    for (size_t i = 0; i < volumeBits; ++i)
        fs.allocationVolumeBits.push_back(17 + static_cast<uint32_t>(i));
    fs.gcVolumeBits = fs.allocationVolumeBits;
    return fs;
}

void
BM_Predict(benchmark::State &state)
{
    core::SsdCheck check(features(static_cast<size_t>(state.range(0))));
    sim::Rng rng(1);
    sim::SimTime now;
    for (auto _ : state) {
        const auto req = blockdev::makeRead4k(rng.nextBelow(1 << 20));
        now += 1000;
        benchmark::DoNotOptimize(check.predict(req, now));
    }
}
BENCHMARK(BM_Predict)->Arg(0)->Arg(1)->Arg(2);

void
BM_PredictWrite(benchmark::State &state)
{
    core::SsdCheck check(features(0));
    sim::Rng rng(2);
    sim::SimTime now;
    for (auto _ : state) {
        const auto req = blockdev::makeWrite4k(rng.nextBelow(1 << 20));
        now += 1000;
        benchmark::DoNotOptimize(check.predict(req, now));
    }
}
BENCHMARK(BM_PredictWrite);

void
BM_OnSubmit(benchmark::State &state)
{
    core::SsdCheck check(features(0));
    sim::Rng rng(3);
    sim::SimTime now;
    for (auto _ : state) {
        const auto req = blockdev::makeWrite4k(rng.nextBelow(1 << 20));
        now += 1000;
        check.onSubmit(req, now);
    }
}
BENCHMARK(BM_OnSubmit);

void
BM_FullPredictSubmitComplete(benchmark::State &state)
{
    core::SsdCheck check(features(0));
    sim::Rng rng(4);
    sim::SimTime now;
    for (auto _ : state) {
        const auto req = blockdev::makeWrite4k(rng.nextBelow(1 << 20));
        now += 1000;
        const auto pred = check.predict(req, now);
        check.onSubmit(req, now);
        benchmark::DoNotOptimize(
            check.onComplete(req, pred, now, now + 40000));
    }
}
BENCHMARK(BM_FullPredictSubmitComplete);

} // namespace

BENCHMARK_MAIN();
