/**
 * @file
 * Fig. 6 — Write-buffer profiling on SSD A: the background_read_test
 * observes periodic read-latency spikes; the write count between
 * adjacent spikes reveals the buffer size (paper: 248KB).
 */
#include "bench_common.h"

using namespace ssdcheck;

int
main()
{
    bench::banner("Fig. 6", "background_read_test on SSD A: read "
                            "latency vs writes issued");

    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
    runner.sequentialFill();
    const core::WbAnalysis wb = runner.analyzeWriteBuffer({});

    // Print the spike positions (one line per blocked-read window).
    std::cout << "read-latency spikes (>250us), by writes issued:\n";
    stats::TablePrinter t;
    t.header({"writes issued", "read latency", "delta writes"});
    uint64_t last = 0;
    bool inSpike = false;
    int shown = 0;
    for (const auto &[writes, lat] : wb.readLatencySeries) {
        if (lat > sim::microseconds(250)) {
            if (!inSpike && shown < 16) {
                t.row({std::to_string(writes), sim::formatDuration(lat),
                       last == 0 ? "-" : std::to_string(writes - last)});
                last = writes;
                ++shown;
            }
            inSpike = true;
        } else {
            inSpike = false;
        }
    }
    t.print(std::cout);

    std::cout << "\ndiagnosed buffer: " << wb.bufferBytes / 1024 << "KB, "
              << toString(wb.bufferType) << ", flush="
              << (wb.flushAlgorithms.readTrigger ? "full+read" : "full")
              << "  (mean spike latency "
              << sim::formatDuration(wb.meanSpikeLatency) << ")\n";
    std::cout << "paper: periodic spikes every 62 writes -> 248KB "
                 "buffer on SSD A.\n";
    return 0;
}
