/**
 * @file
 * Fig. 12 — VA-LVM vs Linear-LVM: throughput and 99.5th-percentile
 * latency of the read-intensive tenant for all nine combinations of a
 * read-intensive and a write-intensive workload on SSD D.
 *
 * Paper: up to 4.29x (avg 2.38x) read throughput; tail down to 6.53%
 * (avg 20.3%) of Linear-LVM's.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "usecases/lvm.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

struct PairResult
{
    double readMbps;
    sim::SimDuration readTail;
    double writeMbps;
};

PairResult
runPair(workload::SniaWorkload readW, workload::SniaWorkload writeW,
        bool volumeAware)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::D));
    dev.precondition();
    const uint64_t span = dev.capacityPages() / 4; // per-tenant span
    const auto readTrace = workload::buildSniaTrace(readW, span, 0.008, 3);
    const auto writeTrace =
        workload::buildSniaTrace(writeW, span, 0.012, 4);

    auto vols = volumeAware ? usecases::makeVolumeAwareVolumes(
                                  dev, dev.config().volumeBits)
                            : usecases::makeLinearVolumes(dev, 2);
    std::vector<usecases::TenantSpec> tenants(2);
    tenants[0].trace = &readTrace;
    tenants[0].dev = vols[0].get();
    tenants[1].trace = &writeTrace;
    tenants[1].dev = vols[1].get();
    // The writer loops so the colocation pressure lasts for the whole
    // read-tenant measurement, as in the paper's concurrent setup.
    tenants[1].loop = true;
    const auto res = usecases::runTenantsClosedLoop(tenants, sim::kTimeZero);
    return PairResult{res[0].throughputMbps(),
                      res[0].readLatency.percentile(99.5),
                      res[1].throughputMbps()};
}

} // namespace

int
main()
{
    bench::banner("Fig. 12", "VA-LVM vs Linear-LVM on SSD D: nine "
                             "read x write tenant combinations");

    stats::TablePrinter t;
    t.header({"combo", "tput Linear", "tput VA", "speedup",
              "p99.5 Linear", "p99.5 VA", "tail ratio"});
    double speedupSum = 0, tailSum = 0, speedupMax = 0;
    double tailMin = 1e9;
    int n = 0;
    for (const auto r : workload::readIntensiveWorkloads()) {
        for (const auto w : workload::writeIntensiveWorkloads()) {
            const PairResult lin = runPair(r, w, false);
            const PairResult va = runPair(r, w, true);
            const double speedup = va.readMbps / lin.readMbps;
            const double tail = static_cast<double>(va.readTail) /
                                static_cast<double>(lin.readTail);
            speedupSum += speedup;
            tailSum += tail;
            speedupMax = std::max(speedupMax, speedup);
            tailMin = std::min(tailMin, tail);
            ++n;
            t.row({toString(r) + "+" + toString(w),
                   stats::TablePrinter::num(lin.readMbps, 1),
                   stats::TablePrinter::num(va.readMbps, 1),
                   stats::TablePrinter::num(speedup, 2) + "x",
                   sim::formatDuration(lin.readTail),
                   sim::formatDuration(va.readTail),
                   stats::TablePrinter::pct(tail, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nread-tenant speedup: max "
              << stats::TablePrinter::num(speedupMax, 2) << "x, avg "
              << stats::TablePrinter::num(speedupSum / n, 2)
              << "x   (paper: up to 4.29x, avg 2.38x)\n"
              << "tail latency vs Linear: min "
              << stats::TablePrinter::pct(tailMin, 1) << ", avg "
              << stats::TablePrinter::pct(tailSum / n, 1)
              << "   (paper: down to 6.53%, avg 20.3%)\n";
    return 0;
}
