/**
 * @file
 * Hot-path microbenchmark: per-operation FTL cost vs device size.
 *
 * Complements bench_hotpath_gc (which times only victim selection
 * inside a combined loop) by isolating the three mapper operations the
 * SoA rework targeted — overwrite/invalidate, GC page migration, and
 * victim pick — and reporting ns per operation at 256 to 16384
 * physical blocks. The packed validity bitmaps and per-block counters
 * keep invalidate O(1) and let migration walk a victim's live pages as
 * one bitmap scan, so all three columns should stay roughly flat as
 * the device grows 64x.
 */
#include "bench_common.h"

#include <chrono>

#include "nand/nand_array.h"
#include "sim/rng.h"
#include "ssd/page_mapper.h"

using namespace ssdcheck;

namespace {

struct SizeResult
{
    uint64_t blocks = 0;
    double nsPerInvalidate = 0; ///< writePage() of an already-mapped lpn.
    double nsPerMigrate = 0;    ///< collectBlock() per valid page moved.
    double nsPerPick = 0;       ///< pickVictimGreedy().
};

double
nsPerOp(std::chrono::nanoseconds total, uint64_t ops)
{
    return ops > 0
               ? static_cast<double>(total.count()) /
                     static_cast<double>(ops)
               : 0.0;
}

SizeResult
runSize(uint32_t blocksPerPlane)
{
    nand::NandGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.planesPerDie = 1;
    g.blocksPerPlane = blocksPerPlane;
    g.pagesPerBlock = 64;

    nand::NandArray arr(g, nand::NandTiming{});
    const uint64_t userPages = g.totalPages() * 8 / 10; // 80% exported
    ssd::PageMapper m(arr, userPages);

    sim::Rng rng(42);
    auto gcIfNeeded = [&]() {
        while (m.freeBlocks() < 4) {
            const nand::Pbn v = m.pickVictimGreedy();
            if (v == ssd::PageMapper::kNoVictim)
                break;
            m.collectBlock(v);
        }
    };

    // Fill once, then fragment with random overwrites so every timed
    // write invalidates an existing mapping and victims carry a
    // realistic mix of live pages.
    for (uint64_t lpn = 0; lpn < userPages; ++lpn) {
        m.writePage(core::Lpn{lpn}, lpn);
        gcIfNeeded();
    }
    for (uint64_t i = 0; i < userPages; ++i) {
        m.writePage(core::Lpn{rng.nextBelow(userPages)}, i);
        gcIfNeeded();
    }

    const uint64_t iters = 200000;
    std::chrono::nanoseconds invalidateTime{0};
    std::chrono::nanoseconds migrateTime{0};
    std::chrono::nanoseconds pickTime{0};
    uint64_t invalidates = 0;
    uint64_t migrated = 0;
    uint64_t picks = 0;

    for (uint64_t i = 0; i < iters; ++i) {
        // Every lpn is mapped after the fill, so each write is one
        // invalidate + one program.
        const uint64_t lpn = rng.nextBelow(userPages);
        const auto w0 = std::chrono::steady_clock::now();
        m.writePage(core::Lpn{lpn}, i);
        invalidateTime += std::chrono::steady_clock::now() - w0;
        ++invalidates;

        while (m.freeBlocks() < 4) {
            const auto p0 = std::chrono::steady_clock::now();
            const nand::Pbn v = m.pickVictimGreedy();
            pickTime += std::chrono::steady_clock::now() - p0;
            ++picks;
            if (v == ssd::PageMapper::kNoVictim)
                break;
            const auto m0 = std::chrono::steady_clock::now();
            const uint64_t moved = m.collectBlock(v);
            migrateTime += std::chrono::steady_clock::now() - m0;
            migrated += moved;
        }
    }

    SizeResult r;
    r.blocks = g.totalBlocks();
    r.nsPerInvalidate = nsPerOp(invalidateTime, invalidates);
    r.nsPerMigrate = nsPerOp(migrateTime, migrated);
    r.nsPerPick = nsPerOp(pickTime, picks);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("hotpath/mapper",
                  "Per-operation FTL cost (invalidate / GC migrate / "
                  "victim pick) vs physical block count");

    const std::vector<uint32_t> sizes{256, 1024, 4096, 16384};
    std::vector<SizeResult> results(sizes.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < sizes.size(); ++i)
        tasks.emplace_back("blocks" + std::to_string(sizes[i]), [&, i]() {
            results[i] = runSize(sizes[i]);
            return uint64_t{200000};
        });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"blocks", "ns/invalidate", "ns/migrate", "ns/pick",
              "inval vs smallest"});
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        t.row({std::to_string(r.blocks),
               stats::TablePrinter::num(r.nsPerInvalidate, 1),
               stats::TablePrinter::num(r.nsPerMigrate, 1),
               stats::TablePrinter::num(r.nsPerPick, 1),
               stats::TablePrinter::num(
                   r.nsPerInvalidate / results[0].nsPerInvalidate, 2) +
                   "x"});
    }
    t.print(std::cout);
    std::cout << "\nAll three operations are O(1) in block count "
                 "(migration is per live page moved), so growth across "
                 "the 64x range reflects cache locality, not "
                 "algorithmic cost: once the forward/inverse maps "
                 "outgrow the LLC, every op pays a few memory stalls. "
                 "A linear-scan implementation would grow ~64x.\n";
    bench::reportBatch("hotpath_mapper", timing,
                       "BENCH_hotpath_mapper.json");
    return 0;
}
