/**
 * @file
 * Hot-path microbenchmark: observability overhead of the full sink
 * (trace recorder + registry + audit log) on the Fig. 11 replay loop.
 *
 * Runs the same diagnose-once / replay-many workload with the sink
 * detached and attached, alternating repetitions so CPU frequency
 * drift hits both sides equally, and takes the best repetition of
 * each. Only the replay loop itself is timed — device construction,
 * preconditioning and workload generation are identical on both
 * sides and would only dilute the comparison.
 *
 * The contract (DESIGN.md "Observability") is twofold: detached, the
 * hooks are single null checks (unmeasurable; the perf-smoke grid
 * gate vs bench/baseline.json guards that path), and attached, the
 * full sink stays within a bounded per-request cost. `--max-overhead
 * PCT` turns the attached bound into a gate (exit 4 on violation)
 * for the CI perf-smoke job; the absolute ns/request figure printed
 * alongside is the number to compare against real device speeds.
 *
 * Usage: bench_hotpath_trace [--max-overhead PCT] [--jobs N]
 * (--jobs is accepted for uniformity but timing always runs serial —
 * interleaved parallel reps would corrupt the comparison.)
 */
#include "bench_common.h"

#include <algorithm>
#include <chrono>

#include "core/accuracy.h"
#include "obs/audit_log.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/trace_recorder.h"
#include "workload/synthetic.h"

using namespace ssdcheck;

namespace {

constexpr uint64_t kRequests = 150000;
constexpr uint64_t kTraceSeed = 77;
// Reps are cheap (~tens of ms each); a deep best-of keeps the
// differential stable on noisy shared hosts, where a best-of-3 min
// can still sit 2x above the true floor.
constexpr int kReps = 7;

/** One replay repetition; returns replay-only wall seconds. */
double
runRep(const core::FeatureSet &features, const workload::Trace &trace,
       bool attach, core::AccuracyResult *acc)
{
    // Fresh device per rep (same preset = same virtual-time results);
    // the diagnosed features transfer because the replica is
    // identical. Setup stays outside the timed window.
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    dev.precondition();
    core::SsdCheck check(features);

    obs::TraceRecorder recorder;
    obs::Registry registry;
    obs::AuditLog audit;
    const obs::Sink sink{&recorder, &registry, &audit};
    if (attach) {
        dev.attachObservability(sink);
        check.attachObservability(sink);
    }
    const auto t0 = std::chrono::steady_clock::now();
    *acc = core::evaluatePredictionAccuracy(dev, check, trace, sim::kTimeZero, nullptr,
                                            nullptr,
                                            attach ? &sink : nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("hotpath/trace",
                  "Observability overhead: Fig. 11 replay with the "
                  "trace/metrics/audit sink detached vs attached");

    double maxOverheadPct = -1.0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--max-overhead") == 0)
            maxOverheadPct = std::strtod(argv[i + 1], nullptr);
    }

    // Diagnose once and build the workload once, outside any timing.
    const bench::DiagnosedDevice d = bench::diagnosePreset(ssd::SsdModel::A);
    if (!d.features.bufferModelUsable()) {
        std::fprintf(stderr, "diagnosis failed: buffer model unusable\n");
        return 2;
    }
    const ssd::SsdDevice probe(ssd::makePreset(ssd::SsdModel::A));
    const auto trace = workload::buildRwMixedTrace(
        kRequests, probe.capacityPages(), kTraceSeed);

    // Alternating reps: off, on, off, on, ...
    std::vector<core::AccuracyResult> accs(2 * kReps);
    std::vector<double> replaySeconds(2 * kReps);
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (int rep = 0; rep < kReps; ++rep) {
        for (const bool attach : {false, true}) {
            const size_t slot = 2 * rep + (attach ? 1 : 0);
            tasks.emplace_back(
                std::string(attach ? "on" : "off") + std::to_string(rep),
                [&, slot, attach]() {
                    replaySeconds[slot] =
                        runRep(d.features, trace, attach, &accs[slot]);
                    return kRequests;
                });
        }
    }
    const perf::BatchTiming timing = perf::runTimedBatch(tasks, 1);

    double bestOff = 1e300;
    double bestOn = 1e300;
    for (size_t i = 0; i < replaySeconds.size(); ++i) {
        double &best = i % 2 == 0 ? bestOff : bestOn;
        best = std::min(best, replaySeconds[i]);
    }
    const double iosOff = static_cast<double>(kRequests) / bestOff;
    const double iosOn = static_cast<double>(kRequests) / bestOn;
    const double overheadPct = (bestOn - bestOff) / bestOff * 100.0;
    const double nsPerReq =
        (bestOn - bestOff) / static_cast<double>(kRequests) * 1e9;

    stats::TablePrinter t;
    t.header({"sink", "replay s", "IOs/s"});
    t.row({"detached", stats::TablePrinter::num(bestOff, 3),
           stats::TablePrinter::num(iosOff, 0)});
    t.row({"attached", stats::TablePrinter::num(bestOn, 3),
           stats::TablePrinter::num(iosOn, 0)});
    t.print(std::cout);
    std::printf("\nobservability overhead: %.2f%% (%.0f ns/request; best "
                "of %d reps each, %llu requests/rep)\n",
                overheadPct, nsPerReq, kReps,
                static_cast<unsigned long long>(kRequests));

    // Attached must not change results (the e2e tests assert this
    // bit-exactly; the bench double-checks its own reps).
    for (int rep = 0; rep < kReps; ++rep) {
        if (accs[2 * rep].hlCorrect != accs[2 * rep + 1].hlCorrect ||
            accs[2 * rep].nlCorrect != accs[2 * rep + 1].nlCorrect) {
            std::fprintf(stderr,
                         "error: attaching the sink changed results\n");
            return 3;
        }
    }

    bench::reportBatch("hotpath_trace", timing, "BENCH_hotpath_trace.json");

    if (maxOverheadPct >= 0 && overheadPct > maxOverheadPct) {
        std::fprintf(stderr,
                     "FAIL: overhead %.2f%% exceeds gate %.2f%%\n",
                     overheadPct, maxOverheadPct);
        return 4;
    }
    return 0;
}
