/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * as text (rows/series), using only the public library API. Paper
 * reference values are printed alongside so EXPERIMENTS.md can record
 * paper-vs-measured without re-deriving anything.
 */
#ifndef SSDCHECK_BENCH_BENCH_COMMON_H
#define SSDCHECK_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <iostream>
#include <string>

#include "core/diagnosis.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "stats/table_printer.h"

namespace ssdcheck::bench {

/** Print the figure/table banner with a short description. */
inline void
banner(const std::string &id, const std::string &what)
{
    stats::printBanner(std::cout, id);
    std::cout << what << "\n\n";
}

/** A preset device plus its diagnosis output, ready for experiments. */
struct DiagnosedDevice
{
    std::unique_ptr<ssd::SsdDevice> dev;
    core::FeatureSet features;
    sim::SimTime now = 0;
};

/** Build and fully diagnose one Table-I preset. */
inline DiagnosedDevice
diagnosePreset(ssd::SsdModel model, uint64_t seedSalt = 0)
{
    DiagnosedDevice out;
    out.dev = std::make_unique<ssd::SsdDevice>(
        ssd::makePreset(model, seedSalt));
    core::DiagnosisRunner runner(*out.dev, core::DiagnosisConfig{});
    out.features = runner.extractFeatures();
    out.now = runner.now();
    return out;
}

} // namespace ssdcheck::bench

#endif // SSDCHECK_BENCH_BENCH_COMMON_H
