/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * as text (rows/series), using only the public library API. Paper
 * reference values are printed alongside so EXPERIMENTS.md can record
 * paper-vs-measured without re-deriving anything.
 */
#ifndef SSDCHECK_BENCH_BENCH_COMMON_H
#define SSDCHECK_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/diagnosis.h"
#include "core/ssdcheck.h"
#include "perf/grid.h"
#include "perf/thread_pool.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "stats/table_printer.h"

namespace ssdcheck::bench {

/** Print the figure/table banner with a short description. */
inline void
banner(const std::string &id, const std::string &what)
{
    stats::printBanner(std::cout, id);
    std::cout << what << "\n\n";
}

/** A preset device plus its diagnosis output, ready for experiments. */
struct DiagnosedDevice
{
    std::unique_ptr<ssd::SsdDevice> dev;
    core::FeatureSet features;
    sim::SimTime now;
};

/** Build and fully diagnose one Table-I preset. */
inline DiagnosedDevice
diagnosePreset(ssd::SsdModel model, uint64_t seedSalt = 0)
{
    DiagnosedDevice out;
    out.dev = std::make_unique<ssd::SsdDevice>(
        ssd::makePreset(model, seedSalt));
    core::DiagnosisRunner runner(*out.dev, core::DiagnosisConfig{});
    out.features = runner.extractFeatures();
    out.now = runner.now();
    return out;
}

/**
 * Parse `--jobs N` from a bench binary's argv (default: all cores).
 * Results are job-count independent — shards are fully isolated — so
 * the flag only changes wall-clock time.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    return perf::ThreadPool::defaultJobs();
}

/**
 * Print the batch timing summary and write BENCH_grid.json next to
 * the binary's working directory (the CI perf-smoke artifact).
 */
inline void
reportBatch(const std::string &name, const perf::BatchTiming &timing,
            const std::string &jsonPath = "BENCH_grid.json")
{
    std::printf("\n%s: %zu shards, jobs=%u, wall %.2fs, "
                "%.0f simulated IOs/s, aggregate speedup %.2fx\n",
                name.c_str(), timing.tasks.size(), timing.jobs,
                timing.wallSeconds, timing.iosPerSec(),
                timing.aggregateSpeedup());
    if (!perf::writeBenchGridJson(jsonPath, name, timing))
        std::fprintf(stderr, "warning: could not write %s\n",
                     jsonPath.c_str());
    else
        std::printf("wrote %s\n", jsonPath.c_str());
}

} // namespace ssdcheck::bench

#endif // SSDCHECK_BENCH_BENCH_COMMON_H
