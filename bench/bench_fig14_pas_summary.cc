/**
 * @file
 * Fig. 14 — Tail latency and throughput of Build/Exch/Live on SSD F
 * and G, normalized to noop, including the ideal (oracle) PAS.
 *
 * Paper: PAS cuts tail latency by 71%/67% (F/G avg) and raises
 * throughput by 32%/27% vs noop; ideal PAS bounds the misprediction
 * cost (PAS within ~8-36% latency and ~5% throughput of ideal).
 *
 * All 18 (model, workload, scheduler) runs are independent — each
 * builds its own device — so they shard across the pool (`--jobs N`)
 * and the table is assembled in fixed order afterwards.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "usecases/pas.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

struct RunStats
{
    sim::SimDuration tail;
    double mbps;
    uint64_t requests = 0;
};

RunStats
runOne(ssd::SsdModel model, workload::SniaWorkload w,
       const std::string &which, double tailPct)
{
    auto trace = workload::buildSniaTrace(w, 32 * 1024, 0.015,
                                          40 + static_cast<uint64_t>(w));
    sim::Rng rng(7 + static_cast<uint64_t>(w));
    trace.assignPoissonArrivals(5000.0, rng);

    ssd::SsdDevice dev(ssd::makePreset(model));
    core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
    usecases::ScheduledRunResult res;
    if (which == "ideal") {
        runner.sequentialFill();
        usecases::IdealPasScheduler sched(dev);
        res = usecases::runScheduled(dev, sched, trace, runner.now(),
                                     nullptr);
    } else {
        const auto fs = runner.extractFeatures();
        core::SsdCheck check(fs);
        if (which == "pas") {
            usecases::PasScheduler sched(check);
            res = usecases::runScheduled(dev, sched, trace, runner.now(),
                                         &check);
        } else {
            usecases::NoopScheduler sched;
            res = usecases::runScheduled(dev, sched, trace, runner.now(),
                                         &check);
        }
    }
    return RunStats{res.stream.readLatency.percentile(tailPct),
                    res.stream.throughputMbps(),
                    static_cast<uint64_t>(trace.size())};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Fig. 14", "PAS vs noop vs ideal: read tail latency "
                             "and throughput (normalized to noop)");

    // Measurement percentiles follow the paper's per-pair points.
    const double tailPct = 97.6;

    // Enumerate the full (model, workload, scheduler) grid up front so
    // every run is one independent task; print from the merged array.
    struct Cell
    {
        ssd::SsdModel model;
        workload::SniaWorkload workload;
        std::string which;
    };
    std::vector<Cell> cells;
    for (const auto m : {ssd::SsdModel::F, ssd::SsdModel::G})
        for (const auto w : workload::readIntensiveWorkloads())
            for (const std::string which : {"noop", "pas", "ideal"})
                cells.push_back(Cell{m, w, which});

    std::vector<RunStats> runs(cells.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < cells.size(); ++i)
        tasks.emplace_back(
            toString(cells[i].workload) + "-" +
                ssd::toString(cells[i].model) + "/" + cells[i].which,
            [&, i]() {
                runs[i] = runOne(cells[i].model, cells[i].workload,
                                  cells[i].which, tailPct);
                return runs[i].requests;
            });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"workload-SSD", "tail noop", "tail pas", "tail ideal",
              "pas/noop", "tput pas/noop", "tput ideal/noop"});
    double tailSumF = 0, tailSumG = 0, tputSumF = 0, tputSumG = 0;
    int nF = 0, nG = 0;
    size_t idx = 0;
    for (const auto m : {ssd::SsdModel::F, ssd::SsdModel::G}) {
        for (const auto w : workload::readIntensiveWorkloads()) {
            const RunStats noop = runs[idx++];
            const RunStats pas = runs[idx++];
            const RunStats ideal = runs[idx++];
            const double tailRatio = static_cast<double>(pas.tail) /
                                     static_cast<double>(noop.tail);
            const double tputRatio = pas.mbps / noop.mbps;
            if (m == ssd::SsdModel::F) {
                tailSumF += tailRatio;
                tputSumF += tputRatio;
                ++nF;
            } else {
                tailSumG += tailRatio;
                tputSumG += tputRatio;
                ++nG;
            }
            t.row({toString(w) + "-" + ssd::toString(m),
                   sim::formatDuration(noop.tail),
                   sim::formatDuration(pas.tail),
                   sim::formatDuration(ideal.tail),
                   stats::TablePrinter::pct(tailRatio, 1),
                   stats::TablePrinter::num(tputRatio, 2) + "x",
                   stats::TablePrinter::num(ideal.mbps / noop.mbps, 2) +
                       "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\navg PAS tail vs noop: SSD F "
              << stats::TablePrinter::pct(tailSumF / nF, 1) << ", SSD G "
              << stats::TablePrinter::pct(tailSumG / nG, 1)
              << "   (paper: 29% and 33% of noop)\n"
              << "avg PAS throughput vs noop: SSD F "
              << stats::TablePrinter::num(tputSumF / nF, 2) << "x, SSD G "
              << stats::TablePrinter::num(tputSumG / nG, 2)
              << "x   (paper: 1.32x and 1.27x)\n";
    bench::reportBatch("fig14_pas_summary", timing);
    return 0;
}
