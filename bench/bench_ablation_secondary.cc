/**
 * @file
 * Ablation — the paper's §VI future work ("we expect more feature
 * extractions and performance models (e.g., wear-leveling, ECC, SLC
 * caching) can improve the accuracy... We plan to add these models in
 * the future work") implemented and measured: a two-cluster
 * secondary-feature model that separates SLC-migration events from GC
 * events and predicts each from its own interval history.
 *
 * Evaluated on the SLC-cache devices (SSD D and E) over the
 * write-intensive workloads.
 */
#include "bench_common.h"

#include "core/accuracy.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

std::pair<double, double>
runVariant(ssd::SsdModel model, bool useSecondary)
{
    auto d = bench::diagnosePreset(model);
    core::RuntimeConfig rc;
    rc.useSecondaryModel = useSecondary;
    core::SsdCheck check(d.features, rc);
    sim::SimTime now = d.now;
    double hl = 0, nl = 0;
    int n = 0;
    for (const auto w :
         {workload::SniaWorkload::TPCE, workload::SniaWorkload::Homes,
          workload::SniaWorkload::Web, workload::SniaWorkload::RwMixed}) {
        const auto trace = workload::buildSniaTrace(
            w, d.dev->capacityPages(), 0.03, 1000 + static_cast<int>(w));
        sim::SimTime end = now;
        const auto acc = core::evaluatePredictionAccuracy(*d.dev, check,
                                                          trace, now, &end);
        now = end + sim::milliseconds(100);
        hl += acc.hlAccuracy() * 100;
        nl += acc.nlAccuracy() * 100;
        ++n;
    }
    return {hl / n, nl / n};
}

} // namespace

int
main()
{
    bench::banner("Ablation (§VI)", "Secondary-feature (SLC migration) "
                                    "model on the SLC-cache devices");

    stats::TablePrinter t;
    t.header({"SSD", "base model (HL/NL)", "+ secondary model (HL/NL)"});
    for (const auto m : {ssd::SsdModel::D, ssd::SsdModel::E}) {
        const auto base = runVariant(m, false);
        const auto sec = runVariant(m, true);
        t.row({ssd::toString(m),
               stats::TablePrinter::num(base.first, 1) + " / " +
                   stats::TablePrinter::num(base.second, 1),
               stats::TablePrinter::num(sec.first, 1) + " / " +
                   stats::TablePrinter::num(sec.second, 1)});
    }
    t.print(std::cout);
    std::cout
        << "\nThe model separates the two long-event classes cleanly "
           "(see tests/secondary_model_test.cc), but on these presets "
           "most residual HL misses come from aperiodic unmodeled "
           "stalls rather than from conflating migration with GC, so "
           "the end-to-end gain is small — an honest negative result "
           "for the paper's future-work hypothesis under our noise "
           "model.\n";
    return 0;
}
