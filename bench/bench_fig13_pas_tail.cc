/**
 * @file
 * Fig. 13 — Read tail-latency distribution of Build on SSD G under
 * noop, cfq, deadline and SSD-only PAS.
 *
 * Paper: noop longest tail; cfq/deadline shorter; PAS shortest thanks
 * to flush-aware reordering.
 *
 * The four scheduler runs each own a private device replica, so they
 * run in parallel (`--jobs N`) and print in fixed order afterwards.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "usecases/pas.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

usecases::ScheduledRunResult
runWith(const std::string &which, const workload::Trace &paced)
{
    auto d = bench::diagnosePreset(ssd::SsdModel::G);
    core::SsdCheck check(d.features);
    std::unique_ptr<usecases::Scheduler> sched;
    if (which == "noop")
        sched = std::make_unique<usecases::NoopScheduler>();
    else if (which == "deadline")
        sched = std::make_unique<usecases::DeadlineScheduler>();
    else if (which == "cfq")
        sched = std::make_unique<usecases::CfqScheduler>();
    else
        sched = std::make_unique<usecases::PasScheduler>(check);
    return usecases::runScheduled(*d.dev, *sched, paced, d.now, &check);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Fig. 13", "Read tail latency of Build on SSD G by "
                             "scheduler");

    auto trace = workload::buildSniaTrace(workload::SniaWorkload::Build,
                                          32 * 1024, 0.08, 5);
    sim::Rng rng(6);
    trace.assignPoissonArrivals(5000.0, rng);

    const std::vector<std::string> scheds{"noop", "cfq", "deadline",
                                          "pas"};
    std::vector<usecases::ScheduledRunResult> results(scheds.size());
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (size_t i = 0; i < scheds.size(); ++i)
        tasks.emplace_back(scheds[i], [&, i]() {
            results[i] = runWith(scheds[i], trace);
            return static_cast<uint64_t>(trace.size());
        });
    const auto timing =
        perf::runTimedBatch(tasks, bench::parseJobs(argc, argv));

    stats::TablePrinter t;
    t.header({"scheduler", "p90", "p95", "p99", "p99.5", "p99.9",
              "read mean"});
    std::vector<std::pair<std::string, sim::SimDuration>> tails;
    for (size_t i = 0; i < scheds.size(); ++i) {
        const auto &lat = results[i].stream.readLatency;
        tails.emplace_back(scheds[i], lat.percentile(99));
        t.row({scheds[i], sim::formatDuration(lat.percentile(90)),
               sim::formatDuration(lat.percentile(95)),
               sim::formatDuration(lat.percentile(99)),
               sim::formatDuration(lat.percentile(99.5)),
               sim::formatDuration(lat.percentile(99.9)),
               sim::formatDuration(
                   static_cast<sim::SimDuration>(lat.mean()))});
    }
    t.print(std::cout);

    std::cout << "\np99 ordering:";
    for (const auto &[name, tail] : tails)
        std::cout << "  " << name << "=" << sim::formatDuration(tail);
    std::cout << "\npaper: noop longest tail; cfq and deadline in "
                 "between; PAS shortest (flush-aware reordering).\n";
    bench::reportBatch("fig13_pas_tail", timing);
    return 0;
}
