/**
 * @file
 * Fig. 13 — Read tail-latency distribution of Build on SSD G under
 * noop, cfq, deadline and SSD-only PAS.
 *
 * Paper: noop longest tail; cfq/deadline shorter; PAS shortest thanks
 * to flush-aware reordering.
 */
#include "bench_common.h"

#include <algorithm>
#include <array>

#include "usecases/pas.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

usecases::ScheduledRunResult
runWith(const std::string &which, const workload::Trace &paced)
{
    auto d = bench::diagnosePreset(ssd::SsdModel::G);
    core::SsdCheck check(d.features);
    std::unique_ptr<usecases::Scheduler> sched;
    if (which == "noop")
        sched = std::make_unique<usecases::NoopScheduler>();
    else if (which == "deadline")
        sched = std::make_unique<usecases::DeadlineScheduler>();
    else if (which == "cfq")
        sched = std::make_unique<usecases::CfqScheduler>();
    else
        sched = std::make_unique<usecases::PasScheduler>(check);
    return usecases::runScheduled(*d.dev, *sched, paced, d.now, &check);
}

} // namespace

int
main()
{
    bench::banner("Fig. 13", "Read tail latency of Build on SSD G by "
                             "scheduler");

    auto trace = workload::buildSniaTrace(workload::SniaWorkload::Build,
                                          32 * 1024, 0.08, 5);
    sim::Rng rng(6);
    trace.assignPoissonArrivals(5000.0, rng);

    stats::TablePrinter t;
    t.header({"scheduler", "p90", "p95", "p99", "p99.5", "p99.9",
              "read mean"});
    std::vector<std::pair<std::string, sim::SimDuration>> tails;
    for (const std::string s : {"noop", "cfq", "deadline", "pas"}) {
        const auto res = runWith(s, trace);
        const auto &lat = res.stream.readLatency;
        tails.emplace_back(s, lat.percentile(99));
        t.row({s, sim::formatDuration(lat.percentile(90)),
               sim::formatDuration(lat.percentile(95)),
               sim::formatDuration(lat.percentile(99)),
               sim::formatDuration(lat.percentile(99.5)),
               sim::formatDuration(lat.percentile(99.9)),
               sim::formatDuration(
                   static_cast<sim::SimDuration>(lat.mean()))});
    }
    t.print(std::cout);

    std::cout << "\np99 ordering:";
    for (const auto &[name, tail] : tails)
        std::cout << "  " << name << "=" << sim::formatDuration(tail);
    std::cout << "\npaper: noop longest tail; cfq and deadline in "
                 "between; PAS shortest (flush-aware reordering).\n";
    return 0;
}
