/**
 * @file
 * Table I — Extracted internal features of SSD A-G.
 *
 * Runs the complete diagnosis on every preset and prints the
 * recovered features next to each device's ground truth.
 */
#include "bench_common.h"

using namespace ssdcheck;

int
main()
{
    bench::banner("Table I", "Diagnosed internal features vs ground "
                             "truth for all seven devices");

    stats::TablePrinter t;
    t.header({"SSD", "volumes (bits)", "buffer", "type", "flush",
              "ground truth", "match"});
    int matches = 0;
    for (const auto m : ssd::allModels()) {
        const auto d = bench::diagnosePreset(m);
        const auto &fs = d.features;
        const auto &truth = d.dev->config();

        std::string bits = "(";
        if (fs.allocationVolumeBits.empty()) {
            bits += "none";
        } else {
            for (size_t i = 0; i < fs.allocationVolumeBits.size(); ++i)
                bits += (i ? ", " : "") +
                        std::to_string(fs.allocationVolumeBits[i]);
        }
        bits += ")";

        const std::string flush =
            fs.flushAlgorithms.readTrigger ? "full+read" : "full";
        const std::string truthStr =
            std::to_string(truth.numVolumes()) + "v " +
            std::to_string(truth.bufferBytes / 1024) + "KB " +
            ssd::toString(truth.bufferType) +
            (truth.readTriggerFlush ? " full+read" : " full");
        const bool ok =
            fs.allocationVolumeBits == truth.volumeBits &&
            fs.gcVolumeBits == truth.volumeBits &&
            fs.bufferBytes == truth.bufferBytes &&
            (fs.bufferType == core::BufferTypeFeature::Back) ==
                (truth.bufferType == ssd::BufferType::Back) &&
            fs.flushAlgorithms.readTrigger == truth.readTriggerFlush;
        matches += ok ? 1 : 0;
        t.row({d.dev->name(),
               std::to_string(fs.numVolumes()) + " " + bits,
               std::to_string(fs.bufferBytes / 1024) + "KB",
               toString(fs.bufferType), flush, truthStr,
               ok ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\n" << matches << "/7 devices fully recovered "
              << "(paper Table I lists the same seven configurations).\n";
    return matches == 7 ? 0 : 1;
}
