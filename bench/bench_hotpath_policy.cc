/**
 * @file
 * Hot-path microbenchmark: resilience policy layer overhead per
 * request, measured as ns/submit through the full decorator stack
 * (PolicyDevice -> ResilientDevice -> SsdDevice) against the bare
 * retry layer.
 *
 * The policy layer's fast path is a handful of ring pushes and
 * comparisons per completion; it should cost tens of nanoseconds on
 * top of a ~300 ns/request simulator, and "off" must be a pure
 * pass-through.
 */
#include "bench_common.h"

#include <chrono>
#include <functional>
#include <vector>

#include "blockdev/resilient_device.h"
#include "resilience/policy.h"
#include "sim/rng.h"

using namespace ssdcheck;

namespace {

struct PolicyCost
{
    std::string policy;
    double nsPerReq = 0;
    double overheadNs = 0; ///< vs the bare resilient layer.
    uint64_t ops = 0;
    uint64_t shed = 0;
};

constexpr uint64_t kRequests = 200000;

blockdev::IoRequest
nthRequest(sim::Rng &rng, uint64_t capacitySectors)
{
    blockdev::IoRequest req;
    req.type = rng.bernoulli(0.5) ? blockdev::IoType::Read
                                  : blockdev::IoType::Write;
    req.sectors = 8;
    req.lba = rng.nextBelow(capacitySectors - req.sectors) &
              ~static_cast<uint64_t>(7);
    return req;
}

/** ns/request through the bare ResilientDevice (the baseline). */
double
runBare(uint64_t *ops)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A, 1));
    blockdev::ResilientDevice rdev(dev);
    sim::Rng rng(7);
    sim::SimTime now;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kRequests; ++i) {
        const blockdev::IoRequest req =
            nthRequest(rng, dev.capacitySectors());
        const blockdev::IoResult res = rdev.submit(req, now);
        now = res.completeTime;
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    *ops = kRequests;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           static_cast<double>(kRequests);
}

PolicyCost
runPolicy(const resilience::ResiliencePolicy &pol, double baselineNs)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A, 1));
    blockdev::ResilientDevice rdev(dev);
    resilience::PolicyDevice pdev(rdev, pol);
    sim::Rng rng(7);
    sim::SimTime now;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kRequests; ++i) {
        const blockdev::IoRequest req =
            nthRequest(rng, dev.capacitySectors());
        const blockdev::IoResult res = pdev.submitHinted(req, now, 0);
        now = res.completeTime;
    }
    const auto dt = std::chrono::steady_clock::now() - t0;

    PolicyCost r;
    r.policy = pol.name;
    r.ops = kRequests;
    r.shed = pdev.counters().shedTotal();
    r.nsPerReq = static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         dt)
                         .count()) /
                 static_cast<double>(kRequests);
    r.overheadNs = r.nsPerReq - baselineNs;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    bench::banner("hotpath/policy",
                  "Resilience policy layer cost per request (vs bare "
                  "retry layer; healthy device, no faults)");

    uint64_t ops = 0;
    // Warm once, then measure: the first pass faults in the mapping
    // tables, which would otherwise be billed to the baseline.
    (void)runBare(&ops);
    const double baseline = runBare(&ops);

    std::vector<PolicyCost> rows;
    for (const auto &pol : resilience::allResiliencePolicies())
        rows.push_back(runPolicy(pol, baseline));

    stats::TablePrinter t;
    t.header({"policy", "ops", "ns/req", "overhead-ns", "shed"});
    t.row({"(bare)", std::to_string(ops),
           stats::TablePrinter::num(baseline, 1), "-", "-"});
    for (const auto &r : rows)
        t.row({r.policy, std::to_string(r.ops),
               stats::TablePrinter::num(r.nsPerReq, 1),
               stats::TablePrinter::num(r.overheadNs, 1),
               std::to_string(r.shed)});
    t.print(std::cout);
    std::cout << "\non a healthy device the policy layer must not shed "
                 "and its per-request cost should be a small constant "
                 "on top of the simulator.\n";
    return 0;
}
