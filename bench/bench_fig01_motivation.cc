/**
 * @file
 * Fig. 1 — Irregular performance behaviors in commodity SSDs.
 *
 * (a) Latency CDF of a random write+read mix on three devices: every
 *     device shows a long tail (orders of magnitude above the median).
 * (b) Throughput over time for each device: intra-device fluctuation
 *     and inter-device spread.
 */
#include "bench_common.h"

#include <algorithm>

#include "usecases/runner.h"
#include "workload/synthetic.h"

using namespace ssdcheck;

int
main()
{
    bench::banner("Fig. 1", "Irregular behaviors: tail latency CDFs and "
                            "throughput fluctuation on commodity SSDs");

    const ssd::SsdModel models[] = {ssd::SsdModel::A, ssd::SsdModel::C,
                                    ssd::SsdModel::F};

    std::vector<usecases::StreamResult> results;
    for (const auto m : models) {
        ssd::SsdDevice dev(ssd::makePreset(m));
        core::DiagnosisRunner prep(dev, core::DiagnosisConfig{});
        prep.precondition(); // SNIA steady state
        const auto trace =
            workload::buildRwMixedTrace(150000, dev.capacityPages(), 42);
        results.push_back(
            usecases::runClosedLoop(dev, trace, 1, 0, prep.now()));
        results.back().name = dev.name();
    }

    std::cout << "(a) latency CDF points (us)\n";
    stats::TablePrinter cdf;
    cdf.header({"percentile", results[0].name, results[1].name,
                results[2].name});
    for (const double p :
         {50.0, 90.0, 99.0, 99.5, 99.9, 99.99, 100.0}) {
        cdf.row({stats::TablePrinter::num(p, 2),
                 stats::TablePrinter::num(
                     sim::toMicros(results[0].latency.percentile(p)), 0),
                 stats::TablePrinter::num(
                     sim::toMicros(results[1].latency.percentile(p)), 0),
                 stats::TablePrinter::num(
                     sim::toMicros(results[2].latency.percentile(p)), 0)});
    }
    cdf.print(std::cout);
    std::cout << "\npaper: every SSD shows an extreme latency tail "
                 "(>100x the median at the 99.9th+).\n\n";

    std::cout << "(b) throughput over time (MB/s per 100ms window)\n";
    stats::TablePrinter tp;
    tp.header({"window", results[0].name, results[1].name,
               results[2].name});
    const size_t windows = std::min({results[0].timeline.numWindows(),
                                     results[1].timeline.numWindows(),
                                     results[2].timeline.numWindows(),
                                     size_t{12}});
    for (size_t w = 0; w < windows; ++w) {
        tp.row({std::to_string(w),
                stats::TablePrinter::num(results[0].timeline.mbps(w), 1),
                stats::TablePrinter::num(results[1].timeline.mbps(w), 1),
                stats::TablePrinter::num(results[2].timeline.mbps(w), 1)});
    }
    tp.print(std::cout);
    std::cout << "\nthroughput fluctuation (CV) per device:";
    for (const auto &r : results)
        std::cout << "  " << r.name << "="
                  << stats::TablePrinter::num(r.timeline.mbpsCv(), 2);
    std::cout << "\npaper: large time-dependent fluctuation within each "
                 "device and large differences across devices.\n";
    return 0;
}
