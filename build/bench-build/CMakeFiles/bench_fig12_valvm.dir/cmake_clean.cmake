file(REMOVE_RECURSE
  "../bench/bench_fig12_valvm"
  "../bench/bench_fig12_valvm.pdb"
  "CMakeFiles/bench_fig12_valvm.dir/bench_fig12_valvm.cc.o"
  "CMakeFiles/bench_fig12_valvm.dir/bench_fig12_valvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_valvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
