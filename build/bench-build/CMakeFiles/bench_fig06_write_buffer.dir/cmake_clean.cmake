file(REMOVE_RECURSE
  "../bench/bench_fig06_write_buffer"
  "../bench/bench_fig06_write_buffer.pdb"
  "CMakeFiles/bench_fig06_write_buffer.dir/bench_fig06_write_buffer.cc.o"
  "CMakeFiles/bench_fig06_write_buffer.dir/bench_fig06_write_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_write_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
