# Empty dependencies file for bench_fig14_pas_summary.
# This may be replaced when dependencies are built.
