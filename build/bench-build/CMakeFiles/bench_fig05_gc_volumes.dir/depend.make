# Empty dependencies file for bench_fig05_gc_volumes.
# This may be replaced when dependencies are built.
