file(REMOVE_RECURSE
  "../bench/bench_fig13_pas_tail"
  "../bench/bench_fig13_pas_tail.pdb"
  "CMakeFiles/bench_fig13_pas_tail.dir/bench_fig13_pas_tail.cc.o"
  "CMakeFiles/bench_fig13_pas_tail.dir/bench_fig13_pas_tail.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pas_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
