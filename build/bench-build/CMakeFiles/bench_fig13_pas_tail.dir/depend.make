# Empty dependencies file for bench_fig13_pas_tail.
# This may be replaced when dependencies are built.
