# Empty compiler generated dependencies file for bench_ablation_secondary.
# This may be replaced when dependencies are built.
