file(REMOVE_RECURSE
  "../bench/bench_ablation_secondary"
  "../bench/bench_ablation_secondary.pdb"
  "CMakeFiles/bench_ablation_secondary.dir/bench_ablation_secondary.cc.o"
  "CMakeFiles/bench_ablation_secondary.dir/bench_ablation_secondary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_secondary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
