# Empty compiler generated dependencies file for bench_table3_latency_dist.
# This may be replaced when dependencies are built.
