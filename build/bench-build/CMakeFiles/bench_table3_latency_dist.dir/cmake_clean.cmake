file(REMOVE_RECURSE
  "../bench/bench_table3_latency_dist"
  "../bench/bench_table3_latency_dist.pdb"
  "CMakeFiles/bench_table3_latency_dist.dir/bench_table3_latency_dist.cc.o"
  "CMakeFiles/bench_table3_latency_dist.dir/bench_table3_latency_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_latency_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
