
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_accuracy.cc" "bench-build/CMakeFiles/bench_fig11_accuracy.dir/bench_fig11_accuracy.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig11_accuracy.dir/bench_fig11_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
