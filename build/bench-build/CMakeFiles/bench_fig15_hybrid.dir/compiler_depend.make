# Empty compiler generated dependencies file for bench_fig15_hybrid.
# This may be replaced when dependencies are built.
