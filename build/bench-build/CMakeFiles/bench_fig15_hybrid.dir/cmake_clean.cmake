file(REMOVE_RECURSE
  "../bench/bench_fig15_hybrid"
  "../bench/bench_fig15_hybrid.pdb"
  "CMakeFiles/bench_fig15_hybrid.dir/bench_fig15_hybrid.cc.o"
  "CMakeFiles/bench_fig15_hybrid.dir/bench_fig15_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
