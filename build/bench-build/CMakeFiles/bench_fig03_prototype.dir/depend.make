# Empty dependencies file for bench_fig03_prototype.
# This may be replaced when dependencies are built.
