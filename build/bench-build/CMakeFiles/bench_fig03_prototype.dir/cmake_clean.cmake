file(REMOVE_RECURSE
  "../bench/bench_fig03_prototype"
  "../bench/bench_fig03_prototype.pdb"
  "CMakeFiles/bench_fig03_prototype.dir/bench_fig03_prototype.cc.o"
  "CMakeFiles/bench_fig03_prototype.dir/bench_fig03_prototype.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
