file(REMOVE_RECURSE
  "../bench/bench_fig04_alloc_volumes"
  "../bench/bench_fig04_alloc_volumes.pdb"
  "CMakeFiles/bench_fig04_alloc_volumes.dir/bench_fig04_alloc_volumes.cc.o"
  "CMakeFiles/bench_fig04_alloc_volumes.dir/bench_fig04_alloc_volumes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_alloc_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
