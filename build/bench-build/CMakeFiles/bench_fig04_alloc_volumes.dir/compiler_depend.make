# Empty compiler generated dependencies file for bench_fig04_alloc_volumes.
# This may be replaced when dependencies are built.
