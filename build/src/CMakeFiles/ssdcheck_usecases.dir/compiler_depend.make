# Empty compiler generated dependencies file for ssdcheck_usecases.
# This may be replaced when dependencies are built.
