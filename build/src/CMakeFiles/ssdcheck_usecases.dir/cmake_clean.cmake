file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_usecases.dir/usecases/hybrid.cc.o"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/hybrid.cc.o.d"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/lvm.cc.o"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/lvm.cc.o.d"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/pas.cc.o"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/pas.cc.o.d"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/runner.cc.o"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/runner.cc.o.d"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/scheduler.cc.o"
  "CMakeFiles/ssdcheck_usecases.dir/usecases/scheduler.cc.o.d"
  "libssdcheck_usecases.a"
  "libssdcheck_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
