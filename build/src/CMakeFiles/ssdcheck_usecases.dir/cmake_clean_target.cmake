file(REMOVE_RECURSE
  "libssdcheck_usecases.a"
)
