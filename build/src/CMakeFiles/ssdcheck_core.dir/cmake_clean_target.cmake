file(REMOVE_RECURSE
  "libssdcheck_core.a"
)
