file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_core.dir/core/accuracy.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/accuracy.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/calibrator.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/calibrator.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/diagnosis.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/diagnosis.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/feature_set.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/feature_set.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/gc_model.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/gc_model.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/latency_monitor.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/latency_monitor.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/prediction_engine.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/prediction_engine.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/secondary_model.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/secondary_model.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/ssdcheck.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/ssdcheck.cc.o.d"
  "CMakeFiles/ssdcheck_core.dir/core/wb_model.cc.o"
  "CMakeFiles/ssdcheck_core.dir/core/wb_model.cc.o.d"
  "libssdcheck_core.a"
  "libssdcheck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
