# Empty dependencies file for ssdcheck_core.
# This may be replaced when dependencies are built.
