
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cc" "src/CMakeFiles/ssdcheck_core.dir/core/accuracy.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/accuracy.cc.o.d"
  "/root/repo/src/core/calibrator.cc" "src/CMakeFiles/ssdcheck_core.dir/core/calibrator.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/calibrator.cc.o.d"
  "/root/repo/src/core/diagnosis.cc" "src/CMakeFiles/ssdcheck_core.dir/core/diagnosis.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/diagnosis.cc.o.d"
  "/root/repo/src/core/feature_set.cc" "src/CMakeFiles/ssdcheck_core.dir/core/feature_set.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/feature_set.cc.o.d"
  "/root/repo/src/core/gc_model.cc" "src/CMakeFiles/ssdcheck_core.dir/core/gc_model.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/gc_model.cc.o.d"
  "/root/repo/src/core/latency_monitor.cc" "src/CMakeFiles/ssdcheck_core.dir/core/latency_monitor.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/latency_monitor.cc.o.d"
  "/root/repo/src/core/prediction_engine.cc" "src/CMakeFiles/ssdcheck_core.dir/core/prediction_engine.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/prediction_engine.cc.o.d"
  "/root/repo/src/core/secondary_model.cc" "src/CMakeFiles/ssdcheck_core.dir/core/secondary_model.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/secondary_model.cc.o.d"
  "/root/repo/src/core/ssdcheck.cc" "src/CMakeFiles/ssdcheck_core.dir/core/ssdcheck.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/ssdcheck.cc.o.d"
  "/root/repo/src/core/wb_model.cc" "src/CMakeFiles/ssdcheck_core.dir/core/wb_model.cc.o" "gcc" "src/CMakeFiles/ssdcheck_core.dir/core/wb_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
