# Empty compiler generated dependencies file for ssdcheck_nvm.
# This may be replaced when dependencies are built.
