file(REMOVE_RECURSE
  "libssdcheck_nvm.a"
)
