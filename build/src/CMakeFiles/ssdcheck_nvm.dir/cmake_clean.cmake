file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_nvm.dir/nvm/nvm_device.cc.o"
  "CMakeFiles/ssdcheck_nvm.dir/nvm/nvm_device.cc.o.d"
  "libssdcheck_nvm.a"
  "libssdcheck_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
