# Empty compiler generated dependencies file for ssdcheck_workload.
# This may be replaced when dependencies are built.
