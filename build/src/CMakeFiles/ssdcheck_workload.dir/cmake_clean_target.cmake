file(REMOVE_RECURSE
  "libssdcheck_workload.a"
)
