
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/pattern.cc" "src/CMakeFiles/ssdcheck_workload.dir/workload/pattern.cc.o" "gcc" "src/CMakeFiles/ssdcheck_workload.dir/workload/pattern.cc.o.d"
  "/root/repo/src/workload/snia_synth.cc" "src/CMakeFiles/ssdcheck_workload.dir/workload/snia_synth.cc.o" "gcc" "src/CMakeFiles/ssdcheck_workload.dir/workload/snia_synth.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/ssdcheck_workload.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/ssdcheck_workload.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/ssdcheck_workload.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/ssdcheck_workload.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
