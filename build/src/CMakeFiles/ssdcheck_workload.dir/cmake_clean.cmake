file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_workload.dir/workload/pattern.cc.o"
  "CMakeFiles/ssdcheck_workload.dir/workload/pattern.cc.o.d"
  "CMakeFiles/ssdcheck_workload.dir/workload/snia_synth.cc.o"
  "CMakeFiles/ssdcheck_workload.dir/workload/snia_synth.cc.o.d"
  "CMakeFiles/ssdcheck_workload.dir/workload/synthetic.cc.o"
  "CMakeFiles/ssdcheck_workload.dir/workload/synthetic.cc.o.d"
  "CMakeFiles/ssdcheck_workload.dir/workload/trace.cc.o"
  "CMakeFiles/ssdcheck_workload.dir/workload/trace.cc.o.d"
  "libssdcheck_workload.a"
  "libssdcheck_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
