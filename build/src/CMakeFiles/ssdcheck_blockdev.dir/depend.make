# Empty dependencies file for ssdcheck_blockdev.
# This may be replaced when dependencies are built.
