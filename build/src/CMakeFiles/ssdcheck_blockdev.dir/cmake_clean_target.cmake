file(REMOVE_RECURSE
  "libssdcheck_blockdev.a"
)
