file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_blockdev.dir/blockdev/block_device.cc.o"
  "CMakeFiles/ssdcheck_blockdev.dir/blockdev/block_device.cc.o.d"
  "CMakeFiles/ssdcheck_blockdev.dir/blockdev/request.cc.o"
  "CMakeFiles/ssdcheck_blockdev.dir/blockdev/request.cc.o.d"
  "libssdcheck_blockdev.a"
  "libssdcheck_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
