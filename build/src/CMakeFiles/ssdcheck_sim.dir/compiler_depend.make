# Empty compiler generated dependencies file for ssdcheck_sim.
# This may be replaced when dependencies are built.
