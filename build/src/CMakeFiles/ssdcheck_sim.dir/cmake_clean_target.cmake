file(REMOVE_RECURSE
  "libssdcheck_sim.a"
)
