file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ssdcheck_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/ssdcheck_sim.dir/sim/rng.cc.o"
  "CMakeFiles/ssdcheck_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/ssdcheck_sim.dir/sim/sim_time.cc.o"
  "CMakeFiles/ssdcheck_sim.dir/sim/sim_time.cc.o.d"
  "libssdcheck_sim.a"
  "libssdcheck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
