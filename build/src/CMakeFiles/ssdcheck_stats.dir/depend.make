# Empty dependencies file for ssdcheck_stats.
# This may be replaced when dependencies are built.
