file(REMOVE_RECURSE
  "libssdcheck_stats.a"
)
