file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_stats.dir/stats/chi_squared.cc.o"
  "CMakeFiles/ssdcheck_stats.dir/stats/chi_squared.cc.o.d"
  "CMakeFiles/ssdcheck_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/ssdcheck_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/ssdcheck_stats.dir/stats/latency_recorder.cc.o"
  "CMakeFiles/ssdcheck_stats.dir/stats/latency_recorder.cc.o.d"
  "CMakeFiles/ssdcheck_stats.dir/stats/table_printer.cc.o"
  "CMakeFiles/ssdcheck_stats.dir/stats/table_printer.cc.o.d"
  "CMakeFiles/ssdcheck_stats.dir/stats/timeline.cc.o"
  "CMakeFiles/ssdcheck_stats.dir/stats/timeline.cc.o.d"
  "libssdcheck_stats.a"
  "libssdcheck_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
