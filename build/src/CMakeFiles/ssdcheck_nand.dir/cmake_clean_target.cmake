file(REMOVE_RECURSE
  "libssdcheck_nand.a"
)
