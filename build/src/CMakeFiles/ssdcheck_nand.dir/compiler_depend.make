# Empty compiler generated dependencies file for ssdcheck_nand.
# This may be replaced when dependencies are built.
