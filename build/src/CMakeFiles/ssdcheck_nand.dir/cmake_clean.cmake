file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_array.cc.o"
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_array.cc.o.d"
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_chip.cc.o"
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_chip.cc.o.d"
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_config.cc.o"
  "CMakeFiles/ssdcheck_nand.dir/nand/nand_config.cc.o.d"
  "libssdcheck_nand.a"
  "libssdcheck_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
