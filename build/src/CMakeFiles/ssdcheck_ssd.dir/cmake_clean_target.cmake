file(REMOVE_RECURSE
  "libssdcheck_ssd.a"
)
