
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/garbage_collector.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/garbage_collector.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/garbage_collector.cc.o.d"
  "/root/repo/src/ssd/page_mapper.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/page_mapper.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/page_mapper.cc.o.d"
  "/root/repo/src/ssd/presets.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/presets.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/presets.cc.o.d"
  "/root/repo/src/ssd/ssd_config.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_config.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_config.cc.o.d"
  "/root/repo/src/ssd/ssd_device.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_device.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_device.cc.o.d"
  "/root/repo/src/ssd/volume.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/volume.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/volume.cc.o.d"
  "/root/repo/src/ssd/write_buffer.cc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/write_buffer.cc.o" "gcc" "src/CMakeFiles/ssdcheck_ssd.dir/ssd/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
