file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_ssd.dir/ssd/garbage_collector.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/garbage_collector.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/page_mapper.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/page_mapper.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/presets.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/presets.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_config.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_config.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_device.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/ssd_device.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/volume.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/volume.cc.o.d"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/write_buffer.cc.o"
  "CMakeFiles/ssdcheck_ssd.dir/ssd/write_buffer.cc.o.d"
  "libssdcheck_ssd.a"
  "libssdcheck_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
