# Empty dependencies file for ssdcheck_ssd.
# This may be replaced when dependencies are built.
