file(REMOVE_RECURSE
  "CMakeFiles/device_fingerprint.dir/device_fingerprint.cpp.o"
  "CMakeFiles/device_fingerprint.dir/device_fingerprint.cpp.o.d"
  "device_fingerprint"
  "device_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
