# Empty compiler generated dependencies file for device_fingerprint.
# This may be replaced when dependencies are built.
