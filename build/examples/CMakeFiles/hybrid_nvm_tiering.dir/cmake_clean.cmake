file(REMOVE_RECURSE
  "CMakeFiles/hybrid_nvm_tiering.dir/hybrid_nvm_tiering.cpp.o"
  "CMakeFiles/hybrid_nvm_tiering.dir/hybrid_nvm_tiering.cpp.o.d"
  "hybrid_nvm_tiering"
  "hybrid_nvm_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_nvm_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
