# Empty dependencies file for hybrid_nvm_tiering.
# This may be replaced when dependencies are built.
