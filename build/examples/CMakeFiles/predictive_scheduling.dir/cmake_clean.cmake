file(REMOVE_RECURSE
  "CMakeFiles/predictive_scheduling.dir/predictive_scheduling.cpp.o"
  "CMakeFiles/predictive_scheduling.dir/predictive_scheduling.cpp.o.d"
  "predictive_scheduling"
  "predictive_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
