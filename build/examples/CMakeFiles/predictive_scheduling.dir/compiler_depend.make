# Empty compiler generated dependencies file for predictive_scheduling.
# This may be replaced when dependencies are built.
