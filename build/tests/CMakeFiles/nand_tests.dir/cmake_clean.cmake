file(REMOVE_RECURSE
  "CMakeFiles/nand_tests.dir/nand_array_test.cc.o"
  "CMakeFiles/nand_tests.dir/nand_array_test.cc.o.d"
  "CMakeFiles/nand_tests.dir/nand_chip_test.cc.o"
  "CMakeFiles/nand_tests.dir/nand_chip_test.cc.o.d"
  "CMakeFiles/nand_tests.dir/nand_config_test.cc.o"
  "CMakeFiles/nand_tests.dir/nand_config_test.cc.o.d"
  "nand_tests"
  "nand_tests.pdb"
  "nand_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
