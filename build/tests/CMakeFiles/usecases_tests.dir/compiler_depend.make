# Empty compiler generated dependencies file for usecases_tests.
# This may be replaced when dependencies are built.
