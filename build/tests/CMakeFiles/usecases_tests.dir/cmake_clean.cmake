file(REMOVE_RECURSE
  "CMakeFiles/usecases_tests.dir/hybrid_test.cc.o"
  "CMakeFiles/usecases_tests.dir/hybrid_test.cc.o.d"
  "CMakeFiles/usecases_tests.dir/lvm_test.cc.o"
  "CMakeFiles/usecases_tests.dir/lvm_test.cc.o.d"
  "CMakeFiles/usecases_tests.dir/pas_test.cc.o"
  "CMakeFiles/usecases_tests.dir/pas_test.cc.o.d"
  "CMakeFiles/usecases_tests.dir/runner_test.cc.o"
  "CMakeFiles/usecases_tests.dir/runner_test.cc.o.d"
  "CMakeFiles/usecases_tests.dir/scheduler_test.cc.o"
  "CMakeFiles/usecases_tests.dir/scheduler_test.cc.o.d"
  "usecases_tests"
  "usecases_tests.pdb"
  "usecases_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usecases_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
