
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/garbage_collector_test.cc" "tests/CMakeFiles/ssd_tests.dir/garbage_collector_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/garbage_collector_test.cc.o.d"
  "/root/repo/tests/nvm_test.cc" "tests/CMakeFiles/ssd_tests.dir/nvm_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/nvm_test.cc.o.d"
  "/root/repo/tests/page_mapper_test.cc" "tests/CMakeFiles/ssd_tests.dir/page_mapper_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/page_mapper_test.cc.o.d"
  "/root/repo/tests/presets_test.cc" "tests/CMakeFiles/ssd_tests.dir/presets_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/presets_test.cc.o.d"
  "/root/repo/tests/read_disturb_test.cc" "tests/CMakeFiles/ssd_tests.dir/read_disturb_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/read_disturb_test.cc.o.d"
  "/root/repo/tests/request_test.cc" "tests/CMakeFiles/ssd_tests.dir/request_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/request_test.cc.o.d"
  "/root/repo/tests/ssd_config_test.cc" "tests/CMakeFiles/ssd_tests.dir/ssd_config_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/ssd_config_test.cc.o.d"
  "/root/repo/tests/ssd_device_test.cc" "tests/CMakeFiles/ssd_tests.dir/ssd_device_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/ssd_device_test.cc.o.d"
  "/root/repo/tests/volume_test.cc" "tests/CMakeFiles/ssd_tests.dir/volume_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/volume_test.cc.o.d"
  "/root/repo/tests/wear_leveling_test.cc" "tests/CMakeFiles/ssd_tests.dir/wear_leveling_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/wear_leveling_test.cc.o.d"
  "/root/repo/tests/write_buffer_test.cc" "tests/CMakeFiles/ssd_tests.dir/write_buffer_test.cc.o" "gcc" "tests/CMakeFiles/ssd_tests.dir/write_buffer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
