file(REMOVE_RECURSE
  "CMakeFiles/ssd_tests.dir/garbage_collector_test.cc.o"
  "CMakeFiles/ssd_tests.dir/garbage_collector_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/nvm_test.cc.o"
  "CMakeFiles/ssd_tests.dir/nvm_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/page_mapper_test.cc.o"
  "CMakeFiles/ssd_tests.dir/page_mapper_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/presets_test.cc.o"
  "CMakeFiles/ssd_tests.dir/presets_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/read_disturb_test.cc.o"
  "CMakeFiles/ssd_tests.dir/read_disturb_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/request_test.cc.o"
  "CMakeFiles/ssd_tests.dir/request_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd_config_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd_config_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/ssd_device_test.cc.o"
  "CMakeFiles/ssd_tests.dir/ssd_device_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/volume_test.cc.o"
  "CMakeFiles/ssd_tests.dir/volume_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/wear_leveling_test.cc.o"
  "CMakeFiles/ssd_tests.dir/wear_leveling_test.cc.o.d"
  "CMakeFiles/ssd_tests.dir/write_buffer_test.cc.o"
  "CMakeFiles/ssd_tests.dir/write_buffer_test.cc.o.d"
  "ssd_tests"
  "ssd_tests.pdb"
  "ssd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
