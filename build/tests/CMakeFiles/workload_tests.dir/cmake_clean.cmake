file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/pattern_test.cc.o"
  "CMakeFiles/workload_tests.dir/pattern_test.cc.o.d"
  "CMakeFiles/workload_tests.dir/snia_synth_test.cc.o"
  "CMakeFiles/workload_tests.dir/snia_synth_test.cc.o.d"
  "CMakeFiles/workload_tests.dir/synthetic_test.cc.o"
  "CMakeFiles/workload_tests.dir/synthetic_test.cc.o.d"
  "CMakeFiles/workload_tests.dir/trace_io_test.cc.o"
  "CMakeFiles/workload_tests.dir/trace_io_test.cc.o.d"
  "CMakeFiles/workload_tests.dir/trace_test.cc.o"
  "CMakeFiles/workload_tests.dir/trace_test.cc.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
