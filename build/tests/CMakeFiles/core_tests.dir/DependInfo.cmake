
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/calibrator_test.cc" "tests/CMakeFiles/core_tests.dir/calibrator_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/calibrator_test.cc.o.d"
  "/root/repo/tests/feature_set_test.cc" "tests/CMakeFiles/core_tests.dir/feature_set_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/feature_set_test.cc.o.d"
  "/root/repo/tests/gc_model_test.cc" "tests/CMakeFiles/core_tests.dir/gc_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/gc_model_test.cc.o.d"
  "/root/repo/tests/latency_monitor_test.cc" "tests/CMakeFiles/core_tests.dir/latency_monitor_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/latency_monitor_test.cc.o.d"
  "/root/repo/tests/prediction_engine_test.cc" "tests/CMakeFiles/core_tests.dir/prediction_engine_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/prediction_engine_test.cc.o.d"
  "/root/repo/tests/secondary_model_test.cc" "tests/CMakeFiles/core_tests.dir/secondary_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/secondary_model_test.cc.o.d"
  "/root/repo/tests/ssdcheck_facade_test.cc" "tests/CMakeFiles/core_tests.dir/ssdcheck_facade_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/ssdcheck_facade_test.cc.o.d"
  "/root/repo/tests/wb_model_test.cc" "tests/CMakeFiles/core_tests.dir/wb_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/wb_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdcheck_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssdcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
