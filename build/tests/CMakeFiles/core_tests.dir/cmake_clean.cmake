file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/calibrator_test.cc.o"
  "CMakeFiles/core_tests.dir/calibrator_test.cc.o.d"
  "CMakeFiles/core_tests.dir/feature_set_test.cc.o"
  "CMakeFiles/core_tests.dir/feature_set_test.cc.o.d"
  "CMakeFiles/core_tests.dir/gc_model_test.cc.o"
  "CMakeFiles/core_tests.dir/gc_model_test.cc.o.d"
  "CMakeFiles/core_tests.dir/latency_monitor_test.cc.o"
  "CMakeFiles/core_tests.dir/latency_monitor_test.cc.o.d"
  "CMakeFiles/core_tests.dir/prediction_engine_test.cc.o"
  "CMakeFiles/core_tests.dir/prediction_engine_test.cc.o.d"
  "CMakeFiles/core_tests.dir/secondary_model_test.cc.o"
  "CMakeFiles/core_tests.dir/secondary_model_test.cc.o.d"
  "CMakeFiles/core_tests.dir/ssdcheck_facade_test.cc.o"
  "CMakeFiles/core_tests.dir/ssdcheck_facade_test.cc.o.d"
  "CMakeFiles/core_tests.dir/wb_model_test.cc.o"
  "CMakeFiles/core_tests.dir/wb_model_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
