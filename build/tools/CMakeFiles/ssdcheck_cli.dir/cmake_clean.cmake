file(REMOVE_RECURSE
  "CMakeFiles/ssdcheck_cli.dir/ssdcheck_cli.cc.o"
  "CMakeFiles/ssdcheck_cli.dir/ssdcheck_cli.cc.o.d"
  "ssdcheck"
  "ssdcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdcheck_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
