# Empty dependencies file for ssdcheck_cli.
# This may be replaced when dependencies are built.
